package sched

import (
	"encoding/json"
	"fmt"
	"math"
)

// Model selects the communication rules a schedule must obey.
type Model int

const (
	// MacroDataflow is the classical model: a cross-processor edge delays
	// its consumer by data*link, but communications consume no port
	// resources, so any number may proceed in parallel.
	MacroDataflow Model = iota
	// OnePort is the paper's bi-directional one-port model: at any instant a
	// processor is sending to at most one processor and receiving from at
	// most one processor. A send and a receive may overlap each other and
	// computation.
	OnePort
	// UniPort is the uni-directional variant discussed in §2.2-2.3 (the
	// Hollermann/Hsu model): a processor can either send or receive at a
	// given time-step, never both. Communication still overlaps computation.
	UniPort
	// OnePortNoOverlap is the §2.3 variant without communication/computation
	// overlap: the one-port rules apply and, in addition, a processor cannot
	// execute a task while one of its ports is busy.
	OnePortNoOverlap
	// LinkContention is the Sinnen–Sousa model (§2.2): ports are unlimited
	// but each (half-duplex) wire carries at most one message at a time and
	// routing is static. On a fully-connected network it behaves like
	// macro-dataflow; on sparse topologies shared wires serialize traffic.
	LinkContention
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case MacroDataflow:
		return "macro-dataflow"
	case OnePort:
		return "one-port"
	case UniPort:
		return "uni-port"
	case OnePortNoOverlap:
		return "one-port-no-overlap"
	case LinkContention:
		return "link-contention"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Models lists every communication model in the library, from the least to
// the most restrictive port discipline.
func Models() []Model {
	return []Model{MacroDataflow, LinkContention, OnePort, UniPort, OnePortNoOverlap}
}

// TaskEvent records the placement of one task.
type TaskEvent struct {
	Task   int     `json:"task"`
	Proc   int     `json:"proc"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
	Done   bool    `json:"-"` // set once the task has been scheduled
}

// Hop is one wire traversal of a (possibly routed) communication.
type Hop struct {
	FromProc int     `json:"from_proc"`
	ToProc   int     `json:"to_proc"`
	Start    float64 `json:"start"`
	Finish   float64 `json:"finish"`
}

// CommEvent records the transfer of one edge's data between distinct
// processors. Same-processor edges generate no CommEvent. On a
// fully-connected platform there is exactly one hop.
type CommEvent struct {
	FromTask int     `json:"from_task"`
	ToTask   int     `json:"to_task"`
	Data     float64 `json:"data"`
	Hops     []Hop   `json:"hops"`
}

// Start returns the instant the first hop leaves the source processor.
func (c *CommEvent) Start() float64 { return c.Hops[0].Start }

// Finish returns the instant the last hop reaches the destination processor.
func (c *CommEvent) Finish() float64 { return c.Hops[len(c.Hops)-1].Finish }

// Schedule is the output of every heuristic: one TaskEvent per task (indexed
// by task id) and the list of communication events, in the order they were
// committed.
type Schedule struct {
	Tasks []TaskEvent `json:"tasks"`
	Comms []CommEvent `json:"comms"`
	Procs int         `json:"procs"`
}

// NewSchedule returns an empty schedule for n tasks on p processors.
func NewSchedule(n, p int) *Schedule {
	s := &Schedule{Tasks: make([]TaskEvent, n), Procs: p}
	for i := range s.Tasks {
		s.Tasks[i].Task = i
		s.Tasks[i].Proc = -1
	}
	return s
}

// SetTask commits the placement of a task.
func (s *Schedule) SetTask(task, proc int, start, finish float64) {
	s.Tasks[task] = TaskEvent{Task: task, Proc: proc, Start: start, Finish: finish, Done: true}
}

// AddComm appends a communication event.
func (s *Schedule) AddComm(c CommEvent) { s.Comms = append(s.Comms, c) }

// Makespan returns the latest task finish time (communications always
// precede the finish of their consuming task in a valid schedule).
func (s *Schedule) Makespan() float64 {
	var m float64
	for i := range s.Tasks {
		if s.Tasks[i].Done && s.Tasks[i].Finish > m {
			m = s.Tasks[i].Finish
		}
	}
	return m
}

// Proc returns the processor a task is mapped to (alloc in the paper), or -1
// if the task has not been scheduled.
func (s *Schedule) Proc(task int) int {
	if !s.Tasks[task].Done {
		return -1
	}
	return s.Tasks[task].Proc
}

// CommCount returns the number of inter-processor communications, the
// quantity ILHA is designed to reduce.
func (s *Schedule) CommCount() int { return len(s.Comms) }

// TotalCommTime returns the summed duration of every hop of every
// communication.
func (s *Schedule) TotalCommTime() float64 {
	var total float64
	for i := range s.Comms {
		for _, h := range s.Comms[i].Hops {
			total += h.Finish - h.Start
		}
	}
	return total
}

// Stats summarises a schedule for reports and experiment tables.
type Stats struct {
	Makespan      float64   // schedule length
	CommCount     int       // inter-processor messages
	TotalCommTime float64   // summed hop durations
	ProcBusy      []float64 // computation time per processor
	Utilization   float64   // mean busy fraction over processors
}

// ComputeStats derives summary statistics from the schedule.
func (s *Schedule) ComputeStats() Stats {
	st := Stats{
		Makespan:      s.Makespan(),
		CommCount:     s.CommCount(),
		TotalCommTime: s.TotalCommTime(),
		ProcBusy:      make([]float64, s.Procs),
	}
	for i := range s.Tasks {
		if s.Tasks[i].Done {
			st.ProcBusy[s.Tasks[i].Proc] += s.Tasks[i].Finish - s.Tasks[i].Start
		}
	}
	if st.Makespan > 0 && s.Procs > 0 {
		var sum float64
		for _, b := range st.ProcBusy {
			sum += b / st.Makespan
		}
		st.Utilization = sum / float64(s.Procs)
	}
	return st
}

// MarshalJSON/UnmarshalJSON use the natural field encoding; Done is
// reconstructed from Proc >= 0.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	type alias Schedule
	return json.Marshal((*alias)(s))
}

// UnmarshalJSON decodes a schedule and restores the Done flags.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	type alias Schedule
	if err := json.Unmarshal(data, (*alias)(s)); err != nil {
		return err
	}
	for i := range s.Tasks {
		s.Tasks[i].Done = s.Tasks[i].Proc >= 0
	}
	return nil
}

// almostLE reports a <= b up to a scale-aware tolerance; schedules are built
// from chains of float additions, so validators compare with slack.
func almostLE(a, b float64) bool {
	const eps = 1e-6
	return a <= b+eps*(1+math.Abs(a)+math.Abs(b))
}

// almostEQ reports |a-b| within the scale-aware tolerance.
func almostEQ(a, b float64) bool {
	return almostLE(a, b) && almostLE(b, a)
}
