package sched

import (
	"strings"
	"testing"

	"oneport/internal/graph"
	"oneport/internal/platform"
)

// chainFixture builds a 2-task chain u->v (weights 1, data 2) and a
// 2-processor unit platform with link cost 3.
func chainFixture(t *testing.T) (*graph.Graph, *platform.Platform) {
	t.Helper()
	g := graph.New(2)
	u := g.AddNode(1, "u")
	v := g.AddNode(1, "v")
	g.MustEdge(u, v, 2)
	pl, err := platform.Uniform([]float64{1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g, pl
}

// validCrossProc returns a correct cross-processor schedule of the chain:
// u on P0 [0,1), comm [1,7) (2 data * link 3), v on P1 [7,8).
func validCrossProc() *Schedule {
	s := NewSchedule(2, 2)
	s.SetTask(0, 0, 0, 1)
	s.SetTask(1, 1, 7, 8)
	s.AddComm(CommEvent{FromTask: 0, ToTask: 1, Data: 2,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1, Finish: 7}}})
	return s
}

func TestValidateAcceptsCorrectSchedules(t *testing.T) {
	g, pl := chainFixture(t)

	// same-processor schedule
	s := NewSchedule(2, 2)
	s.SetTask(0, 0, 0, 1)
	s.SetTask(1, 0, 1, 2)
	for _, m := range []Model{MacroDataflow, OnePort} {
		if err := Validate(g, pl, s, m); err != nil {
			t.Errorf("%v: same-proc schedule rejected: %v", m, err)
		}
	}

	// cross-processor schedule
	cs := validCrossProc()
	for _, m := range []Model{MacroDataflow, OnePort} {
		if err := Validate(g, pl, cs, m); err != nil {
			t.Errorf("%v: cross-proc schedule rejected: %v", m, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	g, pl := chainFixture(t)
	cases := []struct {
		name    string
		mutate  func(*Schedule)
		wantSub string
	}{
		{"unscheduled task", func(s *Schedule) { s.Tasks[1].Done = false }, "not scheduled"},
		{"bad processor", func(s *Schedule) { s.Tasks[1].Proc = 9 }, "invalid processor"},
		{"negative start", func(s *Schedule) { s.Tasks[0].Start = -1; s.Tasks[0].Finish = 0 }, "negative time"},
		{"wrong duration", func(s *Schedule) { s.Tasks[0].Finish = 5 }, "duration"},
		{"missing comm", func(s *Schedule) { s.Comms = nil }, "no communication"},
		{"comm before producer", func(s *Schedule) { s.Comms[0].Hops[0].Start = 0.5; s.Comms[0].Hops[0].Finish = 6.5 }, "before producer"},
		{"comm after consumer", func(s *Schedule) {
			s.Comms[0].Hops[0].Start = 2
			s.Comms[0].Hops[0].Finish = 8
			s.Tasks[1].Start = 7.5
			s.Tasks[1].Finish = 8.5
		}, "after consumer"},
		{"wrong hop duration", func(s *Schedule) { s.Comms[0].Hops[0].Finish = 5 }, "data*link"},
		{"wrong comm data", func(s *Schedule) { s.Comms[0].Data = 1; s.Comms[0].Hops[0].Finish = 4 }, "comm data"},
		{"wrong source proc", func(s *Schedule) { s.Comms[0].Hops[0].FromProc = 1; s.Comms[0].Hops[0].ToProc = 0 }, "first hop"},
		{"duplicate comm", func(s *Schedule) { s.AddComm(s.Comms[0]) }, "duplicate"},
		{"no hops", func(s *Schedule) { s.Comms[0].Hops = nil }, "no hops"},
	}
	for _, c := range cases {
		s := validCrossProc()
		c.mutate(s)
		err := Validate(g, pl, s, OnePort)
		if err == nil {
			t.Errorf("%s: schedule accepted, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestValidateSameProcEdgeOrdering(t *testing.T) {
	g, pl := chainFixture(t)
	s := NewSchedule(2, 2)
	s.SetTask(0, 0, 1, 2)
	s.SetTask(1, 0, 0, 1) // consumer before producer
	if err := Validate(g, pl, s, MacroDataflow); err == nil {
		t.Fatal("expected precedence violation")
	}
}

func TestValidateComputeOverlap(t *testing.T) {
	g := graph.New(2)
	g.AddNode(2, "a")
	g.AddNode(2, "b")
	pl, err := platform.Homogeneous(1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(2, 1)
	s.SetTask(0, 0, 0, 2)
	s.SetTask(1, 0, 1, 3) // overlaps
	err = Validate(g, pl, s, MacroDataflow)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("err = %v, want overlap", err)
	}
}

func TestValidateCommForSameProcEdge(t *testing.T) {
	g, pl := chainFixture(t)
	s := NewSchedule(2, 2)
	s.SetTask(0, 0, 0, 1)
	s.SetTask(1, 0, 7, 8)
	s.AddComm(CommEvent{FromTask: 0, ToTask: 1, Data: 2,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1, Finish: 7}}})
	if err := Validate(g, pl, s, MacroDataflow); err == nil {
		t.Fatal("expected error: comm event for same-processor edge")
	}
}

func TestValidateCommForNonEdge(t *testing.T) {
	g, pl := chainFixture(t)
	s := validCrossProc()
	s.AddComm(CommEvent{FromTask: 1, ToTask: 0, Data: 2,
		Hops: []Hop{{FromProc: 1, ToProc: 0, Start: 8, Finish: 14}}})
	err := Validate(g, pl, s, MacroDataflow)
	if err == nil || !strings.Contains(err.Error(), "non-edge") {
		t.Fatalf("err = %v, want non-edge", err)
	}
}

// forkFixture: one source with two children on different processors; both
// comms leave the same sender. Under macro-dataflow they may overlap; under
// one-port they must serialize.
func forkFixture(t *testing.T) (*graph.Graph, *platform.Platform) {
	t.Helper()
	g := graph.New(3)
	v0 := g.AddNode(1, "v0")
	v1 := g.AddNode(1, "v1")
	v2 := g.AddNode(1, "v2")
	g.MustEdge(v0, v1, 1)
	g.MustEdge(v0, v2, 1)
	pl, err := platform.Homogeneous(3)
	if err != nil {
		t.Fatal(err)
	}
	return g, pl
}

func TestValidateOnePortSendSerialization(t *testing.T) {
	g, pl := forkFixture(t)
	s := NewSchedule(3, 3)
	s.SetTask(0, 0, 0, 1)
	s.SetTask(1, 1, 2, 3)
	s.SetTask(2, 2, 2, 3)
	// both messages in parallel during [1,2): macro OK, one-port violation
	s.AddComm(CommEvent{FromTask: 0, ToTask: 1, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1, Finish: 2}}})
	s.AddComm(CommEvent{FromTask: 0, ToTask: 2, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 2, Start: 1, Finish: 2}}})
	if err := Validate(g, pl, s, MacroDataflow); err != nil {
		t.Fatalf("macro-dataflow rejected parallel sends: %v", err)
	}
	err := Validate(g, pl, s, OnePort)
	if err == nil || !strings.Contains(err.Error(), "one-port") {
		t.Fatalf("err = %v, want one-port violation", err)
	}

	// serialized version passes one-port
	s2 := NewSchedule(3, 3)
	s2.SetTask(0, 0, 0, 1)
	s2.SetTask(1, 1, 2, 3)
	s2.SetTask(2, 2, 3, 4)
	s2.AddComm(CommEvent{FromTask: 0, ToTask: 1, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1, Finish: 2}}})
	s2.AddComm(CommEvent{FromTask: 0, ToTask: 2, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 2, Start: 2, Finish: 3}}})
	if err := Validate(g, pl, s2, OnePort); err != nil {
		t.Fatalf("serialized schedule rejected: %v", err)
	}
}

func TestValidateOnePortRecvSerialization(t *testing.T) {
	// join: two sources on different procs feeding one sink; receives overlap
	g := graph.New(3)
	a := g.AddNode(1, "a")
	b := g.AddNode(1, "b")
	c := g.AddNode(1, "c")
	g.MustEdge(a, c, 1)
	g.MustEdge(b, c, 1)
	pl, err := platform.Homogeneous(3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(3, 3)
	s.SetTask(0, 0, 0, 1)
	s.SetTask(1, 1, 0, 1)
	s.SetTask(2, 2, 2, 3)
	s.AddComm(CommEvent{FromTask: 0, ToTask: 2, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 2, Start: 1, Finish: 2}}})
	s.AddComm(CommEvent{FromTask: 1, ToTask: 2, Data: 1,
		Hops: []Hop{{FromProc: 1, ToProc: 2, Start: 1, Finish: 2}}})
	if err := Validate(g, pl, s, MacroDataflow); err != nil {
		t.Fatalf("macro-dataflow rejected parallel receives: %v", err)
	}
	err = Validate(g, pl, s, OnePort)
	if err == nil || !strings.Contains(err.Error(), "receives") {
		t.Fatalf("err = %v, want receive overlap", err)
	}
}

func TestValidateOnePortSendRecvOverlapAllowed(t *testing.T) {
	// bi-directional: a processor may send and receive at the same time.
	// chain a(P0) -> b(P1) -> handled while P1 also sends c->d? Build:
	// a on P0 -> b on P1; x on P1 -> y on P2; P1 receives (a->b) during
	// [1,2) and sends (x->y) during [1,2): legal.
	g := graph.New(4)
	a := g.AddNode(1, "a")
	b := g.AddNode(1, "b")
	x := g.AddNode(1, "x")
	y := g.AddNode(1, "y")
	g.MustEdge(a, b, 1)
	g.MustEdge(x, y, 1)
	pl, err := platform.Homogeneous(3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(4, 3)
	s.SetTask(a, 0, 0, 1)
	s.SetTask(b, 1, 2, 3)
	s.SetTask(x, 1, 0, 1)
	s.SetTask(y, 2, 2, 3)
	s.AddComm(CommEvent{FromTask: a, ToTask: b, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1, Finish: 2}}})
	s.AddComm(CommEvent{FromTask: x, ToTask: y, Data: 1,
		Hops: []Hop{{FromProc: 1, ToProc: 2, Start: 1, Finish: 2}}})
	if err := Validate(g, pl, s, OnePort); err != nil {
		t.Fatalf("bi-directional overlap rejected: %v", err)
	}
}

func TestValidateMultiHopChain(t *testing.T) {
	// routed communication 0 -> 1 -> 2 on a line topology
	g := graph.New(2)
	u := g.AddNode(1, "u")
	v := g.AddNode(1, "v")
	g.MustEdge(u, v, 1)
	inf := []float64{0} // placeholder
	_ = inf
	link := [][]float64{
		{0, 1, 1e18}, // use huge finite? no - must be +Inf for missing
		{1, 0, 1},
		{1e18, 1, 0},
	}
	// rebuild with proper Inf
	link[0][2] = inf1()
	link[2][0] = inf1()
	pl, err := platform.New([]float64{1, 1, 1}, link)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(2, 3)
	s.SetTask(u, 0, 0, 1)
	s.SetTask(v, 2, 3, 4)
	s.AddComm(CommEvent{FromTask: u, ToTask: v, Data: 1, Hops: []Hop{
		{FromProc: 0, ToProc: 1, Start: 1, Finish: 2},
		{FromProc: 1, ToProc: 2, Start: 2, Finish: 3},
	}})
	if err := Validate(g, pl, s, OnePort); err != nil {
		t.Fatalf("multi-hop schedule rejected: %v", err)
	}

	// broken chain: middle hop leaves the wrong processor
	s.Comms[0].Hops[1].FromProc = 0
	s.Comms[0].Hops[1].ToProc = 2
	if err := Validate(g, pl, s, OnePort); err == nil {
		t.Fatal("expected broken hop chain error")
	}
}

func inf1() float64 {
	one, zero := 1.0, 0.0
	return one / zero
}
