package sched

import (
	"strings"
	"testing"

	"oneport/internal/graph"
	"oneport/internal/platform"
)

func TestModelsListAndStrings(t *testing.T) {
	models := Models()
	if len(models) != 5 {
		t.Fatalf("Models() = %v", models)
	}
	want := map[Model]string{
		MacroDataflow:    "macro-dataflow",
		OnePort:          "one-port",
		UniPort:          "uni-port",
		OnePortNoOverlap: "one-port-no-overlap",
		LinkContention:   "link-contention",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

// relayFixture builds the discriminating scenario for UniPort: processor P1
// receives message a->b during [1,2) while sending message x->y during
// [1,2). Legal under OnePort (bi-directional), illegal under UniPort.
func relayFixture(t *testing.T) (*graph.Graph, *platform.Platform, *Schedule) {
	t.Helper()
	g := graph.New(4)
	a := g.AddNode(1, "a")
	b := g.AddNode(1, "b")
	x := g.AddNode(1, "x")
	y := g.AddNode(1, "y")
	g.MustEdge(a, b, 1)
	g.MustEdge(x, y, 1)
	pl, err := platform.Homogeneous(3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(4, 3)
	s.SetTask(a, 0, 0, 1)
	s.SetTask(b, 1, 2, 3)
	s.SetTask(x, 1, 0, 1)
	s.SetTask(y, 2, 2, 3)
	s.AddComm(CommEvent{FromTask: a, ToTask: b, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1, Finish: 2}}})
	s.AddComm(CommEvent{FromTask: x, ToTask: y, Data: 1,
		Hops: []Hop{{FromProc: 1, ToProc: 2, Start: 1, Finish: 2}}})
	return g, pl, s
}

func TestUniPortForbidsSimultaneousSendRecv(t *testing.T) {
	g, pl, s := relayFixture(t)
	if err := Validate(g, pl, s, OnePort); err != nil {
		t.Fatalf("one-port rejected bi-directional overlap: %v", err)
	}
	err := Validate(g, pl, s, UniPort)
	if err == nil || !strings.Contains(err.Error(), "uni-port") {
		t.Fatalf("err = %v, want uni-port violation", err)
	}
}

func TestNoOverlapForbidsComputeDuringComm(t *testing.T) {
	// P0 executes a second task while sending: fine under OnePort, illegal
	// under OnePortNoOverlap.
	g := graph.New(3)
	a := g.AddNode(1, "a")
	b := g.AddNode(1, "b")
	c := g.AddNode(1, "c") // independent local task
	g.MustEdge(a, b, 1)
	pl, err := platform.Homogeneous(2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(3, 2)
	s.SetTask(a, 0, 0, 1)
	s.SetTask(c, 0, 1, 2) // overlaps the send below
	s.SetTask(b, 1, 2, 3)
	s.AddComm(CommEvent{FromTask: a, ToTask: b, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1, Finish: 2}}})
	if err := Validate(g, pl, s, OnePort); err != nil {
		t.Fatalf("one-port rejected comm/compute overlap: %v", err)
	}
	err = Validate(g, pl, s, OnePortNoOverlap)
	if err == nil || !strings.Contains(err.Error(), "no-overlap") {
		t.Fatalf("err = %v, want no-overlap violation", err)
	}

	// serialized variant is accepted
	s2 := NewSchedule(3, 2)
	s2.SetTask(a, 0, 0, 1)
	s2.SetTask(c, 0, 2, 3) // after the send
	s2.SetTask(b, 1, 2, 3)
	s2.AddComm(CommEvent{FromTask: a, ToTask: b, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1, Finish: 2}}})
	if err := Validate(g, pl, s2, OnePortNoOverlap); err != nil {
		t.Fatalf("serialized no-overlap schedule rejected: %v", err)
	}
}

func TestNoOverlapForbidsReceiverComputeDuringComm(t *testing.T) {
	// the receiver also cannot compute while receiving
	g := graph.New(3)
	a := g.AddNode(1, "a")
	b := g.AddNode(1, "b")
	c := g.AddNode(1, "c")
	g.MustEdge(a, b, 1)
	pl, err := platform.Homogeneous(2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(3, 2)
	s.SetTask(a, 0, 0, 1)
	s.SetTask(c, 1, 1, 2) // on P1 while P1 receives
	s.SetTask(b, 1, 2, 3)
	s.AddComm(CommEvent{FromTask: a, ToTask: b, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1, Finish: 2}}})
	if err := Validate(g, pl, s, OnePortNoOverlap); err == nil {
		t.Fatal("expected no-overlap violation on the receiver")
	}
}

func TestLinkContentionSerializesSharedWire(t *testing.T) {
	// two messages on the same wire at the same time: fine under macro,
	// illegal under link contention; two messages on *different* wires at
	// the same time are fine under link contention (ports are unlimited).
	g := graph.New(4)
	a := g.AddNode(1, "a")
	b := g.AddNode(1, "b")
	x := g.AddNode(1, "x")
	y := g.AddNode(1, "y")
	g.MustEdge(a, b, 1)
	g.MustEdge(x, y, 1)
	pl, err := platform.Homogeneous(2)
	if err != nil {
		t.Fatal(err)
	}
	// both messages cross wire {0,1} (opposite directions) during [1,2)
	s := NewSchedule(4, 2)
	s.SetTask(a, 0, 0, 1)
	s.SetTask(x, 1, 0, 1)
	s.SetTask(b, 1, 2, 3)
	s.SetTask(y, 0, 2, 3)
	s.AddComm(CommEvent{FromTask: a, ToTask: b, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1, Finish: 2}}})
	s.AddComm(CommEvent{FromTask: x, ToTask: y, Data: 1,
		Hops: []Hop{{FromProc: 1, ToProc: 0, Start: 1, Finish: 2}}})
	if err := Validate(g, pl, s, MacroDataflow); err != nil {
		t.Fatalf("macro rejected: %v", err)
	}
	err = Validate(g, pl, s, LinkContention)
	if err == nil || !strings.Contains(err.Error(), "link-contention") {
		t.Fatalf("err = %v, want link-contention violation", err)
	}
	// note: this schedule is fine under OnePort (different ports involved)
	if err := Validate(g, pl, s, OnePort); err != nil {
		t.Fatalf("one-port rejected half-duplex crossing: %v", err)
	}

	// on 4 processors with disjoint wires, simultaneous messages are fine
	pl4, err := platform.Homogeneous(4)
	if err != nil {
		t.Fatal(err)
	}
	s4 := NewSchedule(4, 4)
	s4.SetTask(a, 0, 0, 1)
	s4.SetTask(x, 2, 0, 1)
	s4.SetTask(b, 1, 2, 3)
	s4.SetTask(y, 3, 2, 3)
	s4.AddComm(CommEvent{FromTask: a, ToTask: b, Data: 1,
		Hops: []Hop{{FromProc: 0, ToProc: 1, Start: 1, Finish: 2}}})
	s4.AddComm(CommEvent{FromTask: x, ToTask: y, Data: 1,
		Hops: []Hop{{FromProc: 2, ToProc: 3, Start: 1, Finish: 2}}})
	if err := Validate(g, pl4, s4, LinkContention); err != nil {
		t.Fatalf("disjoint wires rejected: %v", err)
	}
}

func TestZeroDurationTasksDoNotOccupyProcessor(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(2, "a")
	z := g.AddNode(0, "z") // zero weight, sits inside a's window
	pl, err := platform.Homogeneous(1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(2, 1)
	s.SetTask(a, 0, 0, 2)
	s.SetTask(z, 0, 1, 1)
	if err := Validate(g, pl, s, OnePort); err != nil {
		t.Fatalf("zero-duration task rejected: %v", err)
	}
}
