package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddMergesOverlaps(t *testing.T) {
	cases := []struct {
		name string
		add  [][2]float64
		want []Interval
	}{
		{"disjoint", [][2]float64{{0, 1}, {2, 3}}, []Interval{{0, 1}, {2, 3}}},
		{"touching merge", [][2]float64{{0, 1}, {1, 2}}, []Interval{{0, 2}}},
		{"overlap merge", [][2]float64{{0, 2}, {1, 3}}, []Interval{{0, 3}}},
		{"containment", [][2]float64{{0, 10}, {2, 3}}, []Interval{{0, 10}}},
		{"bridge three", [][2]float64{{0, 1}, {4, 5}, {1, 4}}, []Interval{{0, 5}}},
		{"out of order", [][2]float64{{4, 5}, {0, 1}, {2, 3}}, []Interval{{0, 1}, {2, 3}, {4, 5}}},
		{"empty ignored", [][2]float64{{3, 3}, {5, 4}}, nil},
	}
	for _, c := range cases {
		var s Intervals
		for _, a := range c.add {
			s.Add(a[0], a[1])
		}
		got := s.All()
		if len(got) != len(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%s: got %v, want %v", c.name, got, c.want)
			}
		}
	}
}

func TestBusy(t *testing.T) {
	var s Intervals
	s.Add(1, 3)
	s.Add(5, 7)
	cases := []struct {
		t    float64
		want bool
	}{
		{0, false}, {1, false}, {2, true}, {3, false}, {4, false}, {5, false}, {6, true}, {7, false}, {8, false},
	}
	for _, c := range cases {
		if got := s.Busy(c.t); got != c.want {
			t.Errorf("Busy(%g) = %v, want %v in %v", c.t, got, c.want, s.String())
		}
	}
}

func TestEarliestGapSingle(t *testing.T) {
	var s Intervals
	s.Add(2, 4)
	s.Add(6, 8)
	cases := []struct {
		after, dur, want float64
	}{
		{0, 1, 0},   // fits before everything
		{0, 2, 0},   // exactly fills [0,2)
		{0, 2.5, 8}, // too long for both holes, lands after everything
		{0, 2, 0},   // hole [0,2) exactly fits
		{4, 2, 4},   // hole [4,6) exactly fits a window of 2
		{3, 1, 4},   // after lands inside busy period
		{4, 2, 4},   // exact hole fit
		{7, 5, 8},   // tail
		{10, 1, 10}, // free region
		{0, 0, 0},   // zero duration at a free point
		{6.5, 0, 8}, // zero duration strictly inside busy -> pushed out
		{6, 0, 6},   // zero duration at busy start is fine (touching)
	}
	for _, c := range cases {
		if got := s.EarliestGap(c.after, c.dur); got != c.want {
			t.Errorf("EarliestGap(%g,%g) = %g, want %g in %v", c.after, c.dur, got, c.want, s.String())
		}
	}
}

func TestEarliestGapMultiView(t *testing.T) {
	var send, recv Intervals
	send.Add(0, 5)  // sender busy until 5
	recv.Add(6, 10) // receiver busy 6..10
	// need a window of 2 free on both: [5,6) too short, so 10
	got := EarliestGap(0, 2, View{Base: &send}, View{Base: &recv})
	if got != 10 {
		t.Errorf("EarliestGap = %g, want 10", got)
	}
	// window of 1 fits in [5,6)
	if got := EarliestGap(0, 1, View{Base: &send}, View{Base: &recv}); got != 5 {
		t.Errorf("EarliestGap = %g, want 5", got)
	}
}

func TestEarliestGapWithExtras(t *testing.T) {
	var base Intervals
	base.Add(0, 2)
	var extra []Interval
	extra = AddExtra(extra, 3, 5)
	extra = AddExtra(extra, 2, 3) // insert before, keeps sorted
	v := View{Base: &base, Extra: extra}
	if got := EarliestGap(0, 1, v); got != 5 {
		t.Errorf("EarliestGap = %g, want 5 (base [0,2) + extras [2,5))", got)
	}
	if got := EarliestGap(0, 0, v); got != 0 {
		t.Errorf("zero-dur EarliestGap = %g, want 0", got)
	}
}

func TestAddExtraKeepsOrder(t *testing.T) {
	var extra []Interval
	for _, iv := range [][2]float64{{5, 6}, {1, 2}, {3, 4}, {0, 0.5}} {
		extra = AddExtra(extra, iv[0], iv[1])
	}
	for i := 1; i < len(extra); i++ {
		if extra[i-1].Start > extra[i].Start {
			t.Fatalf("extras out of order: %v", extra)
		}
	}
	if len(extra) != 4 {
		t.Fatalf("len = %d, want 4", len(extra))
	}
	if got := AddExtra(extra, 9, 9); len(got) != 4 {
		t.Fatal("empty interval should be ignored")
	}
}

func TestCloneAndReset(t *testing.T) {
	var s Intervals
	s.Add(1, 2)
	c := s.Clone()
	c.Add(5, 6)
	if s.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone aliases original: %v vs %v", s.String(), c.String())
	}
	s.Reset()
	if s.Len() != 0 || s.TotalBusy() != 0 {
		t.Fatal("Reset did not empty the set")
	}
}

func TestTotalBusy(t *testing.T) {
	var s Intervals
	s.Add(0, 3)
	s.Add(10, 14)
	s.Add(2, 4) // extends first to [0,4)
	if got := s.TotalBusy(); got != 8 {
		t.Errorf("TotalBusy = %g, want 8", got)
	}
}

// referenceGap is a brute-force gap finder used to cross-check EarliestGap.
func referenceGap(busy []Interval, after, dur float64) float64 {
	conflicts := func(t float64) (float64, bool) {
		for _, iv := range busy {
			if iv.Start < t+dur && iv.End > t {
				return iv.End, true
			}
		}
		return 0, false
	}
	t := after
	for {
		end, c := conflicts(t)
		if !c {
			return t
		}
		t = end
	}
}

func TestPropertyEarliestGapMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s Intervals
		var busy []Interval
		for i := 0; i < r.Intn(20); i++ {
			start := float64(r.Intn(50))
			end := start + float64(r.Intn(5))
			s.Add(start, end)
		}
		busy = s.All()
		for trial := 0; trial < 20; trial++ {
			after := float64(r.Intn(60))
			dur := float64(r.Intn(6))
			got := s.EarliestGap(after, dur)
			want := referenceGap(busy, after, dur)
			if got != want {
				t.Logf("seed=%d busy=%v after=%g dur=%g got=%g want=%g", seed, busy, after, dur, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIntervalsInvariants(t *testing.T) {
	// after any Add sequence the set is sorted, non-overlapping, non-touching
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s Intervals
		for i := 0; i < 100; i++ {
			start := r.Float64() * 100
			s.Add(start, start+r.Float64()*10)
		}
		all := s.All()
		for i := range all {
			if all[i].End <= all[i].Start {
				return false
			}
			if i > 0 && all[i-1].End >= all[i].Start {
				return false // overlapping or touching intervals must merge
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGapResultIsFree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var a, b Intervals
		for i := 0; i < 15; i++ {
			s1 := float64(r.Intn(40))
			a.Add(s1, s1+float64(1+r.Intn(4)))
			s2 := float64(r.Intn(40))
			b.Add(s2, s2+float64(1+r.Intn(4)))
		}
		after := float64(r.Intn(30))
		dur := float64(1 + r.Intn(5))
		got := EarliestGap(after, dur, View{Base: &a}, View{Base: &b})
		if got < after {
			return false
		}
		// window must be free in both sets
		for _, s := range []*Intervals{&a, &b} {
			for _, iv := range s.All() {
				if iv.Start < got+dur && iv.End > got {
					return false
				}
			}
		}
		// minimality: got-0.5 (if >= after) must conflict somewhere
		if got > after {
			probe := got - 0.5
			conflict := false
			for _, s := range []*Intervals{&a, &b} {
				for _, iv := range s.All() {
					if iv.Start < probe+dur && iv.End > probe {
						conflict = true
					}
				}
			}
			if !conflict {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
