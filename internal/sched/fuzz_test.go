package sched

import (
	"testing"
)

// FuzzIntervalsAdd feeds arbitrary interval sequences into the timeline and
// checks the structural invariants plus gap-search consistency. Run with
// `go test -fuzz FuzzIntervalsAdd ./internal/sched` for continuous fuzzing;
// the seed corpus below runs as part of the normal suite.
func FuzzIntervalsAdd(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0, 0.5, 2.5)
	f.Add(0.0, 0.0, -1.0, 5.0, 2.0, 2.0)
	f.Add(10.0, 1.0, 1.0, 10.0, 5.0, 6.0)
	f.Fuzz(func(t *testing.T, a1, e1, a2, e2, after, dur float64) {
		if bad(a1) || bad(e1) || bad(a2) || bad(e2) || bad(after) || bad(dur) {
			t.Skip()
		}
		var s Intervals
		s.Add(a1, e1)
		s.Add(a2, e2)
		all := s.All()
		for i := range all {
			if all[i].End <= all[i].Start {
				t.Fatalf("degenerate interval %v after adds", all[i])
			}
			if i > 0 && all[i-1].End >= all[i].Start {
				t.Fatalf("unmerged intervals %v", all)
			}
		}
		if dur < 0 {
			dur = -dur
		}
		if after < 0 {
			after = -after
		}
		got := s.EarliestGap(after, dur)
		if got < after {
			t.Fatalf("EarliestGap(%g,%g) = %g before after", after, dur, got)
		}
		// the returned window must be free
		for _, iv := range all {
			if iv.Start < got+dur && iv.End > got {
				t.Fatalf("EarliestGap(%g,%g) = %g conflicts with %v", after, dur, got, iv)
			}
		}
	})
}

func bad(x float64) bool {
	return x != x || x > 1e12 || x < -1e12 // NaN or magnitudes that overflow the test
}
