// Package sched provides the schedule substrate shared by every heuristic:
// busy-interval timelines with insertion-based gap search, the schedule
// record (task events plus multi-hop communication events), and validators
// that check a schedule against any of the five communication models — the
// classical macro-dataflow model, the paper's bi-directional one-port
// model, and the uni-port / no-overlap / link-contention variants of
// §2.2-2.3.
package sched

import (
	"fmt"
	"math"
	"sort"
)

// Interval is a half-open busy period [Start, End). Zero-length intervals
// are permitted and never conflict with anything.
type Interval struct {
	Start, End float64
}

// Intervals is a set of non-overlapping busy intervals kept sorted by start
// time; adjacent intervals are merged. It is the timeline of one resource:
// a processor's compute unit, its send port, or its receive port.
//
// The zero value is an empty, ready-to-use timeline.
type Intervals struct {
	iv []Interval
}

// Len returns the number of maximal busy intervals.
func (s *Intervals) Len() int { return len(s.iv) }

// All returns a copy of the busy intervals in order.
func (s *Intervals) All() []Interval { return append([]Interval(nil), s.iv...) }

// Add inserts the busy period [start, end), merging it with any overlapping
// or touching intervals. Adding an empty or inverted interval is a no-op for
// end <= start.
//
// Timelines grow mostly monotonically during list scheduling (each commit
// lands at or after the last reservation), so the common cases — append
// after the tail, or merge into the tail — are handled in O(1) before
// falling back to the general binary-search insertion.
func (s *Intervals) Add(start, end float64) {
	if end <= start {
		return
	}
	if n := len(s.iv); n == 0 || start > s.iv[n-1].End {
		s.iv = append(s.iv, Interval{Start: start, End: end})
		return
	} else if start >= s.iv[n-1].Start {
		// touches or overlaps only the tail: intervals are maximal and
		// separated, so everything before iv[n-1] ends strictly before
		// iv[n-1].Start <= start and cannot merge.
		if end > s.iv[n-1].End {
			s.iv[n-1].End = end
		}
		return
	}
	// find the insertion window: all intervals with End >= start can merge
	lo := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].End >= start })
	hi := lo
	for hi < len(s.iv) && s.iv[hi].Start <= end {
		hi++
	}
	if lo == hi {
		// no overlap: plain insert
		s.iv = append(s.iv, Interval{})
		copy(s.iv[lo+1:], s.iv[lo:])
		s.iv[lo] = Interval{Start: start, End: end}
		return
	}
	merged := Interval{Start: math.Min(start, s.iv[lo].Start), End: math.Max(end, s.iv[hi-1].End)}
	s.iv[lo] = merged
	s.iv = append(s.iv[:lo+1], s.iv[hi:]...)
}

// Busy reports whether the point t lies strictly inside a busy interval.
func (s *Intervals) Busy(t float64) bool {
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].End > t })
	return i < len(s.iv) && s.iv[i].Start < t
}

// EarliestGap returns the earliest time t >= after such that [t, t+dur) is
// entirely free. This is the insertion ("gap") policy: holes between
// existing busy periods are used when long enough.
func (s *Intervals) EarliestGap(after, dur float64) float64 {
	return EarliestGap(after, dur, View{Base: s})
}

// LastEnd returns the end of the last busy interval, or 0 when empty. It is
// the horizon an append-only (non-insertion) scheduling policy builds from.
func (s *Intervals) LastEnd() float64 {
	if len(s.iv) == 0 {
		return 0
	}
	return s.iv[len(s.iv)-1].End
}

// TotalBusy returns the sum of busy interval lengths.
func (s *Intervals) TotalBusy() float64 {
	var total float64
	for _, iv := range s.iv {
		total += iv.End - iv.Start
	}
	return total
}

// Clone returns an independent copy of the timeline.
func (s *Intervals) Clone() *Intervals {
	return &Intervals{iv: append([]Interval(nil), s.iv...)}
}

// CloneUsing returns a copy of s whose storage is carved from *arena. The
// carved slice is capacity-limited, so a later Add on the copy reallocates
// instead of writing into a neighbour's carve. Cloning a whole scheduler
// state this way (one arena sized to the total busy count) costs one
// allocation instead of one per timeline — the branch-and-bound search
// clones thousands of states, which made per-timeline clones its hot spot.
func (s *Intervals) CloneUsing(arena *[]Interval) Intervals {
	n0 := len(*arena)
	*arena = append(*arena, s.iv...)
	a := *arena
	return Intervals{iv: a[n0:len(a):len(a)]}
}

// Reset empties the timeline, retaining capacity.
func (s *Intervals) Reset() { s.iv = s.iv[:0] }

// View is one resource timeline as seen by a gap search: the committed busy
// set plus a small sorted overlay of tentative intervals. Overlays let a
// heuristic probe "what if I also placed these communications here?" for
// each candidate processor without copying whole timelines.
type View struct {
	Base  *Intervals // may be nil (treated as empty)
	Extra []Interval // tentative busy periods, sorted by Start, non-overlapping

	// Cur, when non-nil, caches the walk position in Base across successive
	// EarliestGap calls. It is only consulted when still valid and the new
	// search starts at or after the cached time; the caller must invalidate
	// it whenever Base changes.
	Cur *Cursor
}

// Cursor remembers where a previous gap search stopped inside one timeline's
// busy list, so a later search over the same (unchanged) timeline with an
// equal-or-later start time resumes the forward walk instead of re-running
// the binary search. The zero value is an invalid (ignored) cursor.
type Cursor struct {
	idx   int     // first interval with End > at
	at    float64 // the time idx was established for
	valid bool
}

// Invalidate marks the cursor stale; the next search falls back to a binary
// search. Call it whenever the underlying timeline is mutated.
func (c *Cursor) Invalidate() {
	if c != nil {
		c.valid = false
	}
}

// EarliestGap returns the earliest t >= after such that the window
// [t, t+dur) is simultaneously free in every view. A communication, for
// example, needs a common free window on the sender's send port and the
// receiver's receive port; that is exactly a two-view search.
//
// dur == 0 windows conflict only when strictly inside a busy period, so
// zero-size messages schedule instantly at their ready time.
//
// The search is a k-way merged walk: every view keeps a cursor into its
// committed busy list and its overlay, and since the candidate time t only
// ever increases, each cursor advances monotonically. One call is therefore
// O(k·log n) for the initial positioning plus O(total intervals walked),
// instead of a fresh binary search per conflict.
func EarliestGap(after, dur float64, views ...View) float64 {
	// cursor storage: stack-allocated for the common arities (<= 4 views)
	var biArr, eiArr [4]int
	bi, ei := biArr[:], eiArr[:]
	if len(views) > 4 {
		bi = make([]int, len(views))
		ei = make([]int, len(views))
	}
	for i := range views {
		v := &views[i]
		if v.Base == nil {
			continue
		}
		if c := v.Cur; c != nil && c.valid && after >= c.at {
			bi[i] = c.idx
			continue
		}
		iv := v.Base.iv
		bi[i] = sort.Search(len(iv), func(j int) bool { return iv[j].End > after })
	}
	t := after
	for {
		moved := false
		for i := range views {
			v := &views[i]
			if v.Base != nil {
				iv := v.Base.iv
				j := bi[i]
				for j < len(iv) && iv[j].End <= t {
					j++
				}
				bi[i] = j
				// A zero-length window still conflicts when it sits strictly
				// inside a busy interval: Start < t and End > t implies
				// Start < t+0.
				if j < len(iv) && iv[j].Start < t+dur && iv[j].End > t {
					t = iv[j].End
					moved = true
				}
			}
			j := ei[i]
			for j < len(v.Extra) && v.Extra[j].End <= t {
				j++
			}
			ei[i] = j
			if j < len(v.Extra) && v.Extra[j].Start < t+dur && v.Extra[j].End > t {
				t = v.Extra[j].End
				moved = true
			}
		}
		if !moved {
			for i := range views {
				v := &views[i]
				if v.Cur != nil && v.Base != nil {
					*v.Cur = Cursor{idx: bi[i], at: t, valid: true}
				}
			}
			return t
		}
	}
}

// AddExtra inserts [start, end) into a sorted overlay slice, keeping it
// sorted by Start. Overlays are tiny (a handful of tentative messages), so
// linear insertion is appropriate.
func AddExtra(extra []Interval, start, end float64) []Interval {
	if end <= start {
		return extra
	}
	pos := len(extra)
	for i, e := range extra {
		if e.Start > start {
			pos = i
			break
		}
	}
	extra = append(extra, Interval{})
	copy(extra[pos+1:], extra[pos:])
	extra[pos] = Interval{Start: start, End: end}
	return extra
}

// String renders the busy set, mainly for test failure messages.
func (s *Intervals) String() string {
	out := "["
	for i, iv := range s.iv {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%g..%g", iv.Start, iv.End)
	}
	return out + "]"
}
