// Package sched provides the schedule substrate shared by every heuristic:
// busy-interval timelines with insertion-based gap search, the schedule
// record (task events plus multi-hop communication events), and validators
// that check a schedule against any of the five communication models — the
// classical macro-dataflow model, the paper's bi-directional one-port
// model, and the uni-port / no-overlap / link-contention variants of
// §2.2-2.3.
package sched

import (
	"fmt"
	"math"
	"sort"
)

// Interval is a half-open busy period [Start, End). Zero-length intervals
// are permitted and never conflict with anything.
type Interval struct {
	Start, End float64
}

// Intervals is a set of non-overlapping busy intervals kept sorted by start
// time; adjacent intervals are merged. It is the timeline of one resource:
// a processor's compute unit, its send port, or its receive port.
//
// The zero value is an empty, ready-to-use timeline.
type Intervals struct {
	iv []Interval
}

// Len returns the number of maximal busy intervals.
func (s *Intervals) Len() int { return len(s.iv) }

// All returns a copy of the busy intervals in order.
func (s *Intervals) All() []Interval { return append([]Interval(nil), s.iv...) }

// Add inserts the busy period [start, end), merging it with any overlapping
// or touching intervals. Adding an empty or inverted interval is a no-op for
// end <= start.
func (s *Intervals) Add(start, end float64) {
	if end <= start {
		return
	}
	// find the insertion window: all intervals with End >= start can merge
	lo := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].End >= start })
	hi := lo
	for hi < len(s.iv) && s.iv[hi].Start <= end {
		hi++
	}
	if lo == hi {
		// no overlap: plain insert
		s.iv = append(s.iv, Interval{})
		copy(s.iv[lo+1:], s.iv[lo:])
		s.iv[lo] = Interval{Start: start, End: end}
		return
	}
	merged := Interval{Start: math.Min(start, s.iv[lo].Start), End: math.Max(end, s.iv[hi-1].End)}
	s.iv[lo] = merged
	s.iv = append(s.iv[:lo+1], s.iv[hi:]...)
}

// Busy reports whether the point t lies strictly inside a busy interval.
func (s *Intervals) Busy(t float64) bool {
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].End > t })
	return i < len(s.iv) && s.iv[i].Start < t
}

// EarliestGap returns the earliest time t >= after such that [t, t+dur) is
// entirely free. This is the insertion ("gap") policy: holes between
// existing busy periods are used when long enough.
func (s *Intervals) EarliestGap(after, dur float64) float64 {
	return EarliestGap(after, dur, View{Base: s})
}

// LastEnd returns the end of the last busy interval, or 0 when empty. It is
// the horizon an append-only (non-insertion) scheduling policy builds from.
func (s *Intervals) LastEnd() float64 {
	if len(s.iv) == 0 {
		return 0
	}
	return s.iv[len(s.iv)-1].End
}

// TotalBusy returns the sum of busy interval lengths.
func (s *Intervals) TotalBusy() float64 {
	var total float64
	for _, iv := range s.iv {
		total += iv.End - iv.Start
	}
	return total
}

// Clone returns an independent copy of the timeline.
func (s *Intervals) Clone() *Intervals {
	return &Intervals{iv: append([]Interval(nil), s.iv...)}
}

// Reset empties the timeline, retaining capacity.
func (s *Intervals) Reset() { s.iv = s.iv[:0] }

// View is one resource timeline as seen by a gap search: the committed busy
// set plus a small sorted overlay of tentative intervals. Overlays let a
// heuristic probe "what if I also placed these communications here?" for
// each candidate processor without copying whole timelines.
type View struct {
	Base  *Intervals // may be nil (treated as empty)
	Extra []Interval // tentative busy periods, sorted by Start, non-overlapping
}

// conflictEnd returns (end, true) of some busy interval conflicting with
// [t, t+dur) in this view, or (0, false) if the window is free.
func (v View) conflictEnd(t, dur float64) (float64, bool) {
	if v.Base != nil {
		iv := v.Base.iv
		i := sort.Search(len(iv), func(i int) bool { return iv[i].End > t })
		if i < len(iv) && iv[i].Start < t+dur && iv[i].End > t {
			return iv[i].End, true
		}
		// A zero-length window still conflicts when it sits strictly inside
		// a busy interval; that case is covered above since Start < t and
		// End > t implies Start < t+0.
	}
	for _, e := range v.Extra {
		if e.Start >= t+dur {
			break
		}
		if e.End > t && e.Start < t+dur {
			return e.End, true
		}
	}
	return 0, false
}

// EarliestGap returns the earliest t >= after such that the window
// [t, t+dur) is simultaneously free in every view. A communication, for
// example, needs a common free window on the sender's send port and the
// receiver's receive port; that is exactly a two-view search.
//
// dur == 0 windows conflict only when strictly inside a busy period, so
// zero-size messages schedule instantly at their ready time.
func EarliestGap(after, dur float64, views ...View) float64 {
	t := after
	for {
		moved := false
		for _, v := range views {
			if end, conflict := v.conflictEnd(t, dur); conflict {
				if end > t {
					t = end
					moved = true
				}
			}
		}
		if !moved {
			return t
		}
	}
}

// AddExtra inserts [start, end) into a sorted overlay slice, keeping it
// sorted by Start. Overlays are tiny (a handful of tentative messages), so
// linear insertion is appropriate.
func AddExtra(extra []Interval, start, end float64) []Interval {
	if end <= start {
		return extra
	}
	pos := len(extra)
	for i, e := range extra {
		if e.Start > start {
			pos = i
			break
		}
	}
	extra = append(extra, Interval{})
	copy(extra[pos+1:], extra[pos:])
	extra[pos] = Interval{Start: start, End: end}
	return extra
}

// String renders the busy set, mainly for test failure messages.
func (s *Intervals) String() string {
	out := "["
	for i, iv := range s.iv {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%g..%g", iv.Start, iv.End)
	}
	return out + "]"
}
