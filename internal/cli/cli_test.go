package cli

import (
	"testing"

	"oneport/internal/sched"
)

func TestParseProcs(t *testing.T) {
	cases := []struct {
		spec    string
		want    []float64
		wantErr bool
	}{
		{"6x5,10x3,15x2", []float64{6, 6, 6, 6, 6, 10, 10, 10, 15, 15}, false},
		{"1,2,4", []float64{1, 2, 4}, false},
		{"2.5x2", []float64{2.5, 2.5}, false},
		{"3X2", []float64{3, 3}, false},
		{"4*3", []float64{4, 4, 4}, false},
		{" 1 , 2 ", []float64{1, 2}, false},
		{"", nil, true},
		{"0x3", nil, true},
		{"-1", nil, true},
		{"axb", nil, true},
		{"1x0", nil, true},
		{"1x-2", nil, true},
	}
	for _, c := range cases {
		got, err := ParseProcs(c.spec)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseProcs(%q) err = %v, wantErr %v", c.spec, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseProcs(%q) = %v, want %v", c.spec, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("ParseProcs(%q) = %v, want %v", c.spec, got, c.want)
				break
			}
		}
	}
}

func TestParsePlatform(t *testing.T) {
	pl, err := ParsePlatform("6x5,10x3,15x2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumProcs() != 10 || pl.MaxSpeedup() != 7.6 {
		t.Fatalf("paper platform not reconstructed: p=%d bound=%g", pl.NumProcs(), pl.MaxSpeedup())
	}
	if _, err := ParsePlatform("bad", 1); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ParsePlatform("1,2", 0); err == nil {
		t.Fatal("expected error for zero link cost")
	}
}

func TestParseModel(t *testing.T) {
	for spec, want := range map[string]sched.Model{
		"oneport": sched.OnePort, "one-port": sched.OnePort, "1port": sched.OnePort,
		"macro": sched.MacroDataflow, "MACRO-DATAFLOW": sched.MacroDataflow,
	} {
		got, err := ParseModel(spec)
		if err != nil || got != want {
			t.Errorf("ParseModel(%q) = %v,%v want %v", spec, got, err, want)
		}
	}
	if _, err := ParseModel("quantum"); err == nil {
		t.Fatal("expected error")
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("100, 200,300")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 100 || got[2] != 300 {
		t.Fatalf("ParseInts = %v", got)
	}
	if _, err := ParseInts("a,b"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ParseInts(" , "); err == nil {
		t.Fatal("expected error for empty list")
	}
}
