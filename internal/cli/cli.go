// Package cli holds the small helpers shared by the command-line tools in
// cmd/: parsing processor specifications and model names.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"oneport/internal/platform"
	"oneport/internal/sched"
)

// ParseProcs parses a processor specification of the form
// "cycle[xCount][,cycle[xCount]...]", e.g. "6x5,10x3,15x2" (the paper's
// platform) or "1,2,4". It returns the cycle-times in order.
func ParseProcs(spec string) ([]float64, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cli: empty processor spec")
	}
	var cycles []float64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		count := 1
		cycleStr := part
		if i := strings.IndexAny(part, "xX*"); i >= 0 {
			cycleStr = part[:i]
			n, err := strconv.Atoi(strings.TrimSpace(part[i+1:]))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("cli: bad count in %q", part)
			}
			count = n
		}
		cycle, err := strconv.ParseFloat(strings.TrimSpace(cycleStr), 64)
		if err != nil || cycle <= 0 {
			return nil, fmt.Errorf("cli: bad cycle-time in %q", part)
		}
		for i := 0; i < count; i++ {
			cycles = append(cycles, cycle)
		}
	}
	return cycles, nil
}

// ParsePlatform builds a uniform platform from a processor spec and a link
// cost.
func ParsePlatform(procSpec string, link float64) (*platform.Platform, error) {
	cycles, err := ParseProcs(procSpec)
	if err != nil {
		return nil, err
	}
	return platform.Uniform(cycles, link)
}

// ParseModel maps "oneport"/"macro" (and a few aliases) to a sched.Model.
func ParseModel(name string) (sched.Model, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "oneport", "one-port", "1port":
		return sched.OnePort, nil
	case "macro", "macrodataflow", "macro-dataflow":
		return sched.MacroDataflow, nil
	case "uniport", "uni-port":
		return sched.UniPort, nil
	case "nooverlap", "no-overlap", "oneport-nooverlap", "one-port-no-overlap":
		return sched.OnePortNoOverlap, nil
	case "linkcontention", "link-contention", "links":
		return sched.LinkContention, nil
	default:
		return 0, fmt.Errorf("cli: unknown model %q (want oneport, macro, uniport, nooverlap or linkcontention)", name)
	}
}

// ModelName maps a parsed model back to the primary token ParseModel
// accepts for it, so serialized state (cache keys, session journals,
// handoff snapshots) round-trips through one canonical spelling.
func ModelName(m sched.Model) string {
	switch m {
	case sched.MacroDataflow:
		return "macro"
	case sched.UniPort:
		return "uniport"
	case sched.OnePortNoOverlap:
		return "nooverlap"
	case sched.LinkContention:
		return "linkcontention"
	default:
		return "oneport"
	}
}

// ParseInts parses a comma-separated integer list like "100,200,300".
func ParseInts(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("cli: bad integer %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cli: empty integer list %q", spec)
	}
	return out, nil
}
