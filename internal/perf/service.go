package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"

	"oneport/internal/exp"
	"oneport/internal/platform"
	"oneport/internal/service"
	"oneport/internal/testbeds"
)

// serviceSpecs benchmarks the serving hot path of internal/service: one
// POST /schedule request driven straight through the HTTP handler (JSON
// decode, canonical hash, pooled scheduler run, validation, JSON encode) —
// no sockets, so the numbers are the server's own cost. Two variants:
//
//   - service-lu30-request: result cache disabled, every op runs the
//     scheduler — allocs/op is the steady-state allocation cost of one
//     served request;
//   - service-lu30-cachehit: default cache, every op after the first is a
//     hit — the floor a repeated sweep-shaped workload pays. Since the
//     encoded-response cache this is the byte-index fast path: hash the
//     body, Write the pre-encoded bytes, no JSON decode or encode at all.
func serviceSpecs() []Spec {
	lu := testbeds.LU(30, exp.CommRatio)
	payload, err := json.Marshal(service.Request{
		Graph:     lu,
		Platform:  platform.Paper(),
		Heuristic: "heft",
	})
	if err != nil {
		panic(err) // static request; cannot fail
	}
	post := func(srv *service.Server) func() (map[string]float64, error) {
		handler := srv.Handler()
		return func() (map[string]float64, error) {
			req := httptest.NewRequest("POST", "/schedule", bytes.NewReader(payload))
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != 200 {
				return nil, fmt.Errorf("perf: service answered %d: %s", rec.Code, rec.Body.Bytes())
			}
			return nil, nil
		}
	}
	return []Spec{
		{
			Name:      "service-lu30-request",
			perOp:     1,
			perOpUnit: "req",
			work:      post(service.New(service.Config{CacheSize: -1, PoolSize: 1})),
		},
		{
			Name:      "service-lu30-cachehit",
			perOp:     1,
			perOpUnit: "req",
			work:      post(service.New(service.Config{PoolSize: 1})),
		},
	}
}
