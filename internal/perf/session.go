package perf

import (
	"context"
	"fmt"
	"os"

	"oneport/internal/exp"
	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/service/journal"
	"oneport/internal/service/session"
	"oneport/internal/testbeds"
)

// sessionSpecs benchmarks the scheduling-session subsystem: one small delta
// against a warm ~300-task session (prefix replay on warm state) versus the
// cold full run a sessionless client would pay for the same change, plus
// the same warm delta on a journaled session (fsync-always write-ahead log
// per delta) so the durability tax of PR 9 stays a measured number. The
// graph is a fork-join with a chain tail — every path runs through the
// re-weighted tail task, so the commit order is stable and everything but
// that task replays, while the cold run re-probes every task including the
// 300-predecessor join.
func sessionSpecs() []Spec {
	g := testbeds.ForkJoin(300, exp.CommRatio)
	for i := 0; i < 3; i++ {
		g.AddNode(10, "")
		g.MustEdge(g.NumNodes()-2, g.NumNodes()-1, 5)
	}
	pl := platform.Paper()
	n := g.NumNodes()

	m := session.NewManager(session.Config{})
	id, _, err := m.Open(context.Background(), session.Params{
		Graph: g, Platform: pl, Heuristic: "heft", Model: sched.OnePort, ProbePar: 1,
	})
	if err != nil {
		panic(err) // static instance; cannot fail
	}
	warmIter := 0
	tune := &heuristics.Tuning{ProbeParallelism: 1, Scratch: heuristics.NewScratch()}
	coldIter := 0

	jdir, err := os.MkdirTemp("", "oneport-perf-journal-")
	if err != nil {
		panic(err)
	}
	jstore, err := journal.Open(journal.Config{Dir: jdir, Policy: journal.SyncAlways})
	if err != nil {
		panic(err)
	}
	jm := session.NewManager(session.Config{Journal: jstore})
	jid, _, err := jm.Open(context.Background(), session.Params{
		Graph: g, Platform: pl, Heuristic: "heft", Model: sched.OnePort, ProbePar: 1,
	})
	if err != nil {
		panic(err)
	}
	jIter := 0

	fp := func(v float64) *float64 { return &v }
	ip := func(v int) *int { return &v }
	return []Spec{
		{
			Name:      "session-delta-warm-forkjoin300",
			perOp:     float64(n),
			perOpUnit: "tasks",
			work: func() (map[string]float64, error) {
				warmIter++
				d := session.Delta{Graph: graph.Delta{{
					Op: "set_weight", Task: ip(n - 1), Weight: fp(float64(10 + warmIter%7)),
				}}}
				info, err := m.Delta(context.Background(), id, d)
				if err != nil {
					return nil, err
				}
				if info.Replayed < n-1 {
					return nil, fmt.Errorf("replayed %d of %d tasks", info.Replayed, n)
				}
				return map[string]float64{"replayed": float64(info.Replayed)}, nil
			},
		},
		{
			Name:      "session-delta-journaled-forkjoin300",
			perOp:     float64(n),
			perOpUnit: "tasks",
			work: func() (map[string]float64, error) {
				jIter++
				d := session.Delta{Graph: graph.Delta{{
					Op: "set_weight", Task: ip(n - 1), Weight: fp(float64(10 + jIter%7)),
				}}}
				info, err := jm.Delta(context.Background(), jid, d)
				if err != nil {
					return nil, err
				}
				if info.Replayed < n-1 {
					return nil, fmt.Errorf("replayed %d of %d tasks", info.Replayed, n)
				}
				js := jstore.StatsSnapshot()
				return map[string]float64{
					"replayed":            float64(info.Replayed),
					"journal_bytes":       float64(js.AppendedBytes),
					"journal_compactions": float64(js.Compactions),
				}, nil
			},
		},
		{
			Name:      "session-delta-cold-forkjoin300",
			perOp:     float64(n),
			perOpUnit: "tasks",
			work: func() (map[string]float64, error) {
				coldIter++
				ng := g.Clone()
				if err := ng.SetWeight(n-1, float64(10+coldIter%7)); err != nil {
					return nil, err
				}
				_, err := heuristics.RunIncremental("heft", ng, pl, sched.OnePort,
					heuristics.ILHAOptions{}, tune, nil, nil)
				return nil, err
			},
		},
	}
}
