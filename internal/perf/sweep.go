package perf

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"

	"oneport/internal/exp"
	"oneport/internal/sched"
	"oneport/internal/service/sweep"
)

// sweepSpecs benchmarks the sharded sweep path: a fig8 figure sweep fed to
// two in-process workers (the real /sweep/run handlers `schedserve -worker`
// mounts) under work-stealing dispatch, merged and verified per op. Two
// variants:
//
//   - sweep-fig8-worksteal: worker caches reset every op — the wall clock
//     of a cold sharded sweep, dominated by the scheduler runs;
//   - sweep-fig8-rerun: caches kept warm — the floor a repeated or
//     overlapping sweep pays, with every job a worker-side cache hit.
//
// The workers start lazily on first use so merely enumerating Specs() (the
// perf tests do) spins up no servers.
func sweepSpecs() []Spec {
	fig, err := exp.FigureByID("fig8")
	if err != nil {
		panic(err) // static table; cannot fail
	}
	sizes := []int{10, 20, 30, 40}
	jobs := sweep.FigureJobs(fig, "oneport", sizes)

	var once sync.Once
	var co *sweep.Coordinator
	setup := func() {
		w1 := httptest.NewServer(sweep.Handler())
		w2 := httptest.NewServer(sweep.Handler())
		co = &sweep.Coordinator{Workers: []string{w1.URL, w2.URL}}
	}
	runSweep := func() (int, error) {
		once.Do(setup)
		results, err := co.Run(context.Background(), nil, jobs)
		if err != nil {
			return 0, err
		}
		if _, err := sweep.MergeFigure(fig, sched.OnePort, results, len(jobs)); err != nil {
			return 0, err
		}
		return co.Stats.CacheHits, nil
	}
	return []Spec{
		{
			Name:      "sweep-fig8-worksteal",
			perOp:     float64(len(jobs)),
			perOpUnit: "jobs",
			work: func() (map[string]float64, error) {
				sweep.ResetWorkerCache()
				hits, err := runSweep()
				if err != nil {
					return nil, err
				}
				if hits != 0 {
					return nil, fmt.Errorf("perf: cold sweep reported %d cache hits", hits)
				}
				return nil, nil
			},
		},
		{
			Name:      "sweep-fig8-rerun",
			perOp:     float64(len(jobs)),
			perOpUnit: "jobs",
			work: func() (map[string]float64, error) {
				hits, err := runSweep()
				if err != nil {
					return nil, err
				}
				return map[string]float64{"cache_hits": float64(hits)}, nil
			},
		},
	}
}
