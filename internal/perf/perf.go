// Package perf runs the repository's figure benchmarks programmatically and
// emits a machine-readable trajectory point (BENCH_<tag>.json), so each PR
// touching the scheduler hot path can record before/after numbers and later
// PRs can prove they did not regress. It is the library behind
// cmd/benchjson.
package perf

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"oneport/internal/exp"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// Schema identifies the report layout; bump on incompatible change.
const Schema = "oneport-bench/v1"

// Result is the measurement of one benchmark spec.
type Result struct {
	Name        string             `json:"name"`
	N           int                `json:"n"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is one trajectory point: the machine context, the measured
// results, and optionally the baseline they are compared against (the
// previous trajectory point, or hand-recorded pre-change numbers).
type Report struct {
	Schema     string   `json:"schema"`
	Tag        string   `json:"tag"`
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Baseline   []Result `json:"baseline,omitempty"`
	Results    []Result `json:"results"`
}

// Spec is one benchmark: a name and a single-iteration work function
// returning its custom metrics. When perOp is non-zero, RunSpec also
// derives a perOpUnit+"/s" throughput metric (e.g. "tasks/s", "req/s")
// from the averaged time per op (stable across GC pauses, unlike timing a
// single iteration).
type Spec struct {
	Name      string
	work      func() (map[string]float64, error)
	perOp     float64
	perOpUnit string
}

// Specs lists the benchmark suite: the six figure benchmarks of the paper's
// evaluation at the bench_test.go sizes, plus raw HEFT and ILHA scheduling
// throughput on the mid-size LU instance.
func Specs() []Spec {
	pl := platform.Paper()
	specs := make([]Spec, 0, 8)
	for _, f := range []struct {
		id   string
		size int
	}{
		{"fig7", 300}, {"fig8", 60}, {"fig9", 40},
		{"fig10", 40}, {"fig11", 60}, {"fig12", 40},
	} {
		fig, err := exp.FigureByID(f.id)
		if err != nil {
			panic(err) // static table; cannot fail
		}
		g, err := testbeds.ByName(fig.Testbed, f.size, exp.CommRatio)
		if err != nil {
			panic(err)
		}
		b := fig.B
		specs = append(specs, Spec{
			Name: fmt.Sprintf("%s-%s%d", f.id, fig.Testbed, f.size),
			work: func() (map[string]float64, error) {
				p, err := exp.RunPoint(g, pl, sched.OnePort, b)
				if err != nil {
					return nil, err
				}
				return map[string]float64{
					"heft-speedup": p.HEFTSpeedup,
					"ilha-speedup": p.ILHASpeedup,
					"tasks":        float64(p.Tasks),
				}, nil
			},
		})
	}
	lu := testbeds.LU(60, exp.CommRatio)
	specs = append(specs, Spec{
		Name:      "heft-throughput-lu60",
		perOp:     float64(lu.NumNodes()),
		perOpUnit: "tasks",
		work: func() (map[string]float64, error) {
			_, err := heuristics.HEFT(lu, pl, sched.OnePort)
			return nil, err
		},
	})
	specs = append(specs, Spec{
		Name:      "ilha-throughput-lu60",
		perOp:     float64(lu.NumNodes()),
		perOpUnit: "tasks",
		work: func() (map[string]float64, error) {
			_, err := heuristics.ILHA(lu, pl, sched.OnePort, heuristics.ILHAOptions{B: 4})
			return nil, err
		},
	})
	// frontier-engine heuristics: the whole-frontier scanners (DLS at the
	// fig8 and fig7 scales, BIL, the budgeted branch-and-bound) whose inner
	// loops run on the cached + parallel (ready task × processor) engine
	specs = append(specs, Spec{
		Name:      "dls-throughput-lu60",
		perOp:     float64(lu.NumNodes()),
		perOpUnit: "tasks",
		work: func() (map[string]float64, error) {
			_, err := heuristics.DLS(lu, pl, sched.OnePort)
			return nil, err
		},
	})
	fj := testbeds.ForkJoin(300, exp.CommRatio)
	specs = append(specs, Spec{
		Name:      "dls-throughput-forkjoin300",
		perOp:     float64(fj.NumNodes()),
		perOpUnit: "tasks",
		work: func() (map[string]float64, error) {
			_, err := heuristics.DLS(fj, pl, sched.OnePort)
			return nil, err
		},
	})
	specs = append(specs, Spec{
		Name:      "bil-throughput-lu60",
		perOp:     float64(lu.NumNodes()),
		perOpUnit: "tasks",
		work: func() (map[string]float64, error) {
			_, err := heuristics.BIL(lu, pl, sched.OnePort)
			return nil, err
		},
	})
	lu5 := testbeds.LU(5, exp.CommRatio)
	specs = append(specs, Spec{
		Name:      "exhaustive-lu5-b4000",
		perOp:     4000, // DFS expansions per op: the budget always cuts off
		perOpUnit: "nodes",
		work: func() (map[string]float64, error) {
			_, _, err := heuristics.Exhaustive(lu5, pl, sched.OnePort, 4000)
			return nil, err
		},
	})
	specs = append(specs, serviceSpecs()...)
	specs = append(specs, sessionSpecs()...)
	specs = append(specs, sweepSpecs()...)
	return specs
}

// RunSpec benchmarks one spec with the standard testing harness (≈1s of
// iterations) and returns its result.
func RunSpec(s Spec) (Result, error) {
	var metrics map[string]float64
	var workErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			metrics, workErr = s.work()
			if workErr != nil {
				return
			}
		}
		b.StopTimer()
		for k, v := range metrics {
			b.ReportMetric(v, k)
		}
		b.StartTimer()
	})
	if workErr != nil {
		return Result{}, fmt.Errorf("perf: %s: %w", s.Name, workErr)
	}
	r := Result{
		Name:        s.Name,
		N:           br.N,
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}
	if len(br.Extra) > 0 {
		r.Metrics = make(map[string]float64, len(br.Extra))
		for k, v := range br.Extra {
			r.Metrics[k] = v
		}
	}
	if s.perOp > 0 && r.NsPerOp > 0 {
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64, 1)
		}
		r.Metrics[s.perOpUnit+"/s"] = s.perOp / (r.NsPerOp * 1e-9)
	}
	return r, nil
}

// Run benchmarks every spec whose name passes the filter (nil keeps all) and
// assembles the trajectory report.
func Run(tag string, keep func(name string) bool) (*Report, error) {
	rep := &Report{
		Schema:     Schema,
		Tag:        tag,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, s := range Specs() {
		if keep != nil && !keep(s.Name) {
			continue
		}
		r, err := RunSpec(s)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, r)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("perf: no benchmark matched the filter")
	}
	return rep, nil
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// LoadBaseline parses a previous report (or a bare result list) and returns
// its results, for embedding as the Baseline of a new report.
func LoadBaseline(data []byte) ([]Result, error) {
	var rep Report
	if err := json.Unmarshal(data, &rep); err == nil && len(rep.Results) > 0 {
		return rep.Results, nil
	}
	var rs []Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("perf: baseline is neither a report nor a result list: %w", err)
	}
	return rs, nil
}
