package perf

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSpecsAreWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Specs() {
		if s.Name == "" || s.work == nil {
			t.Fatalf("malformed spec %+v", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
	}
	if len(seen) < 8 {
		t.Fatalf("expected at least 8 specs, got %d", len(seen))
	}
}

// TestWorkFunctionsRun executes one cheap spec body once (no benchmark
// harness) and checks it yields metrics.
func TestWorkFunctionsRun(t *testing.T) {
	for _, s := range Specs() {
		if !strings.HasPrefix(s.Name, "fig9") {
			continue
		}
		m, err := s.work()
		if err != nil {
			t.Fatal(err)
		}
		if m["heft-speedup"] <= 0 || m["ilha-speedup"] <= 0 {
			t.Fatalf("fig9 metrics missing: %v", m)
		}
		return
	}
	t.Fatal("fig9 spec not found")
}

func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		Schema: Schema, Tag: "t", Date: "d", GoVersion: "go", GOMAXPROCS: 4,
		Baseline: []Result{{Name: "a", N: 1, NsPerOp: 2}},
		Results:  []Result{{Name: "a", N: 3, NsPerOp: 1, Metrics: map[string]float64{"m": 5}}},
	}
	b, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Results[0].Metrics["m"] != 5 || back.Baseline[0].Name != "a" {
		t.Fatalf("round trip mangled report: %+v", back)
	}
	rs, err := LoadBaseline(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Name != "a" {
		t.Fatalf("LoadBaseline(report) = %+v", rs)
	}
	list, _ := json.Marshal(rep.Results)
	rs, err = LoadBaseline(list)
	if err != nil || len(rs) != 1 {
		t.Fatalf("LoadBaseline(list) = %+v, %v", rs, err)
	}
}
