// Package bound computes lower bounds on the makespan of any valid schedule
// of a task graph on a platform. The experiment harness and the tests use
// them as ground anchors: no heuristic result may undercut them, and their
// ratio to a heuristic's makespan bounds its distance from the optimum.
package bound

import (
	"math"
	"sort"

	"oneport/internal/graph"
	"oneport/internal/platform"
	"oneport/internal/sched"
)

// CriticalPath returns the pure-computation critical-path bound: the
// heaviest weight path executed entirely on a fastest processor, ignoring
// all communication. Valid under every model.
func CriticalPath(g *graph.Graph, pl *platform.Platform) (float64, error) {
	cp, err := g.CriticalPathWeight()
	if err != nil {
		return 0, err
	}
	return cp * pl.CycleTime(pl.FastestProc()), nil
}

// TotalWork returns the aggregate-capacity bound: all the work spread over
// every processor at full speed, W / Σ(1/t_i). Valid under every model.
func TotalWork(g *graph.Graph, pl *platform.Platform) float64 {
	return g.TotalWeight() / pl.InvSpeedSum()
}

// FanOut returns the one-port send-serialization bound. For every node v
// with at least two successors: however tasks are mapped, if k of v's
// children run away from v's processor, their messages serialize through
// v's single send port while the local children occupy its compute unit, so
// any makespan is at least
//
//	w(v)·t_min + max( (sum of the n−k smallest child weights)·t_min,
//	                  (sum of the k smallest child data)·l_min )
//
// for the schedule's actual k — hence at least the minimum over k. Each
// term is minimized independently over subset choices, which only loosens
// the bound, so it is valid for OnePort, UniPort and OnePortNoOverlap
// (where one send port is the law); it does NOT hold under MacroDataflow or
// LinkContention. This is exactly the §2.3 argument ("communications from
// the parent node to the children has become the bottleneck") turned into a
// number.
func FanOut(g *graph.Graph, pl *platform.Platform) float64 {
	t := pl.CycleTime(pl.FastestProc())
	lmin := math.Inf(1)
	for q := 0; q < pl.NumProcs(); q++ {
		for r := 0; r < pl.NumProcs(); r++ {
			if q != r && pl.Link(q, r) < lmin {
				lmin = pl.Link(q, r)
			}
		}
	}
	if math.IsInf(lmin, 1) {
		lmin = 0 // single processor: no communication ever happens
	}
	best := 0.0
	for v := 0; v < g.NumNodes(); v++ {
		succ := g.Succ(v)
		if len(succ) < 2 {
			continue
		}
		n := len(succ)
		data := make([]float64, n)
		weights := make([]float64, n)
		for i, a := range succ {
			data[i] = a.Data
			weights[i] = g.Weight(a.Node)
		}
		sort.Float64s(data)
		sort.Float64s(weights)
		// prefix sums of the smallest elements
		wPrefix := make([]float64, n+1)
		dPrefix := make([]float64, n+1)
		for i := 0; i < n; i++ {
			wPrefix[i+1] = wPrefix[i] + weights[i]
			dPrefix[i+1] = dPrefix[i] + data[i]
		}
		wv := g.Weight(v) * t
		lower := math.Inf(1)
		for k := 0; k <= n; k++ {
			local := wPrefix[n-k] * t   // n-k smallest weights stay local
			remote := dPrefix[k] * lmin // k smallest data volumes serialize
			if c := wv + math.Max(local, remote); c < lower {
				lower = c
			}
		}
		if lower > best {
			best = lower
		}
	}
	return best
}

// Best returns the tightest lower bound available for the model.
func Best(g *graph.Graph, pl *platform.Platform, model sched.Model) (float64, error) {
	cp, err := CriticalPath(g, pl)
	if err != nil {
		return 0, err
	}
	lb := math.Max(cp, TotalWork(g, pl))
	switch model {
	case sched.OnePort, sched.UniPort, sched.OnePortNoOverlap:
		if fo := FanOut(g, pl); fo > lb {
			lb = fo
		}
	}
	return lb, nil
}
