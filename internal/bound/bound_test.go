package bound

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/npc"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

func TestCriticalPathChain(t *testing.T) {
	g := graph.New(3)
	a := g.AddNode(1, "")
	b := g.AddNode(2, "")
	c := g.AddNode(3, "")
	g.MustEdge(a, b, 1)
	g.MustEdge(b, c, 1)
	pl, err := platform.Uniform([]float64{2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CriticalPath(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 12 { // (1+2+3) * 2
		t.Errorf("CriticalPath = %g, want 12", cp)
	}
}

func TestTotalWorkPaperPlatform(t *testing.T) {
	g := testbeds.ForkJoin(36, 1) // 38 unit tasks in total
	pl := platform.Paper()
	// 38 / (38/30) = 30
	if got := TotalWork(g, pl); math.Abs(got-30) > 1e-9 {
		t.Errorf("TotalWork = %g, want 30", got)
	}
}

func TestFanOutFigure1(t *testing.T) {
	// Figure 1 fork: w0=1, six children w=1, d=1, homogeneous unit platform.
	// k remote children: max(6-k local, k serial) + 1; best k=3 -> 1+3 = 4.
	// (The true optimum is 5; the bound is allowed to be loose, never
	// above.)
	g, err := testbeds.Fork(1, []float64{1, 1, 1, 1, 1, 1}, []float64{1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Homogeneous(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := FanOut(g, pl); got != 4 {
		t.Errorf("FanOut = %g, want 4", got)
	}
	opt, err := npc.SolveFork(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := FanOut(g, pl); got > opt {
		t.Errorf("FanOut bound %g exceeds the true optimum %g", got, opt)
	}
}

func TestFanOutNoMultiChildNodes(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(1, "")
	b := g.AddNode(1, "")
	g.MustEdge(a, b, 5)
	pl, _ := platform.Homogeneous(2)
	if got := FanOut(g, pl); got != 0 {
		t.Errorf("FanOut = %g, want 0 for a chain", got)
	}
}

func TestBestDominatesComponents(t *testing.T) {
	g := testbeds.LU(10, 10)
	pl := platform.Paper()
	for _, m := range sched.Models() {
		b, err := Best(g, pl, m)
		if err != nil {
			t.Fatal(err)
		}
		cp, _ := CriticalPath(g, pl)
		if b < cp || b < TotalWork(g, pl) {
			t.Errorf("%v: Best = %g below a component bound", m, b)
		}
	}
}

// TestPropertyBoundsNeverExceedTrueOptimumOnForks cross-checks FanOut
// against the exact fork solver on random fork instances.
func TestPropertyBoundsNeverExceedTrueOptimumOnForks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		weights := make([]float64, n)
		data := make([]float64, n)
		for i := range weights {
			weights[i] = float64(1 + r.Intn(9))
			data[i] = float64(r.Intn(9))
		}
		g, err := testbeds.Fork(float64(r.Intn(4)), weights, data)
		if err != nil {
			return false
		}
		pl, err := platform.Homogeneous(n + 1)
		if err != nil {
			return false
		}
		opt, err := npc.SolveFork(g)
		if err != nil {
			return false
		}
		lb, err := Best(g, pl, sched.OnePort)
		if err != nil {
			return false
		}
		if lb > opt+1e-9 {
			t.Logf("seed %d: bound %g exceeds optimum %g (w=%v d=%v)", seed, lb, opt, weights, data)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySchedulesRespectBounds: every heuristic schedule under every
// model sits above the model's Best bound.
func TestPropertySchedulesRespectBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := testbeds.RandomLayered(seed, 2+r.Intn(4), 2+r.Intn(5), 5, float64(r.Intn(6)))
		cycles := make([]float64, 1+r.Intn(4))
		for i := range cycles {
			cycles[i] = float64(1 + r.Intn(5))
		}
		pl, err := platform.Uniform(cycles, float64(1+r.Intn(3)))
		if err != nil {
			return false
		}
		for _, m := range sched.Models() {
			s, err := heuristics.HEFT(g, pl, m)
			if err != nil {
				return false
			}
			lb, err := Best(g, pl, m)
			if err != nil {
				return false
			}
			if s.Makespan() < lb-1e-9 {
				t.Logf("seed %d model %v: makespan %g under bound %g", seed, m, s.Makespan(), lb)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
