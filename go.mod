module oneport

go 1.24
