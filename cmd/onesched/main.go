// Command onesched schedules one task graph with one heuristic and prints
// the result: makespan, speedup, communication statistics, and optionally an
// ASCII Gantt chart or a full event trace. Every schedule is validated
// against the selected communication model before being reported.
//
// Examples:
//
//	onesched -testbed lu -size 100 -heuristic ilha -B 4
//	onesched -testbed laplace -size 60 -heuristic heft -model macro -gantt
//	onesched -testbed forkjoin -size 300 -heuristic ilha -procs 6x5,10x3,15x2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"oneport/internal/bound"
	"oneport/internal/cli"
	"oneport/internal/exp"
	"oneport/internal/heuristics"
	"oneport/internal/sched"
	"oneport/internal/sim"
	"oneport/internal/testbeds"
)

func main() {
	var (
		testbed   = flag.String("testbed", "lu", "task graph family: lu, laplace, stencil, forkjoin, doolittle, ldmt")
		size      = flag.Int("size", 50, "problem size (matrix dimension / grid side / fork width)")
		commRatio = flag.Float64("c", exp.CommRatio, "communication-to-computation ratio")
		heuristic = flag.String("heuristic", "ilha", "scheduling heuristic (heft, ilha, cpop, dls, bil, pct, roundrobin, random)")
		b         = flag.Int("B", 0, "ILHA chunk size (0 = platform perfect-balance count)")
		scanDepth = flag.Int("scan", 0, "ILHA Step-1 scan depth (communications tolerated when grouping)")
		cap2      = flag.Bool("cap2", false, "ILHA: enforce load-balancing caps in Step 2")
		resched   = flag.Bool("resched", false, "ILHA: reschedule each chunk's communications after allocation")
		modelName = flag.String("model", "oneport", "communication model: oneport, macro, uniport, nooverlap, linkcontention")
		procSpec  = flag.String("procs", "6x5,10x3,15x2", "processors as cycle[xCount] list")
		link      = flag.Float64("link", 1, "uniform link cost per data item")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		width     = flag.Int("width", 100, "Gantt chart width in columns")
		trace     = flag.Bool("trace", false, "print the full event trace")
		asJSON    = flag.Bool("json", false, "emit the schedule as JSON instead of the report")
		chromeOut = flag.String("chrome", "", "write a Chrome/Perfetto trace of the schedule to this file")
		improve   = flag.Int("improve", 0, "post-pass: N random rescheduling rounds with the allocation fixed (§4.4)")
		chainOut  = flag.Bool("chain", false, "print the critical chain (what determines the makespan)")
		svgOut    = flag.String("svg", "", "write an SVG Gantt chart to this file")
	)
	flag.Parse()

	if err := run(*testbed, *size, *commRatio, *heuristic, *modelName, *procSpec, *link,
		heuristics.ILHAOptions{B: *b, ScanDepth: *scanDepth, CapStep2: *cap2, RescheduleComms: *resched},
		*gantt, *width, *trace, *asJSON, *chromeOut, *improve, *chainOut, *svgOut); err != nil {
		fmt.Fprintln(os.Stderr, "onesched:", err)
		os.Exit(1)
	}
}

func run(testbed string, size int, commRatio float64, heuristic, modelName, procSpec string,
	link float64, opts heuristics.ILHAOptions, gantt bool, width int, trace, asJSON bool,
	chromeOut string, improve int, chainOut bool, svgOut string) error {
	g, err := testbeds.ByName(testbed, size, commRatio)
	if err != nil {
		return err
	}
	pl, err := cli.ParsePlatform(procSpec, link)
	if err != nil {
		return err
	}
	model, err := cli.ParseModel(modelName)
	if err != nil {
		return err
	}
	f, err := heuristics.ByName(heuristic, opts)
	if err != nil {
		return err
	}
	s, err := f(g, pl, model)
	if err != nil {
		return err
	}
	if err := sched.Validate(g, pl, s, model); err != nil {
		return fmt.Errorf("schedule failed validation: %w", err)
	}
	if improve > 0 {
		before := s.Makespan()
		s, err = heuristics.Improve(g, pl, model, s, improve, 1)
		if err != nil {
			return err
		}
		if err := sched.Validate(g, pl, s, model); err != nil {
			return fmt.Errorf("improved schedule failed validation: %w", err)
		}
		if !asJSON {
			defer fmt.Printf("improve    %d rounds: makespan %.6g -> %.6g\n", improve, before, s.Makespan())
		}
	}
	if chromeOut != "" {
		data, err := sim.ChromeTrace(g, s)
		if err != nil {
			return err
		}
		if err := os.WriteFile(chromeOut, data, 0o644); err != nil {
			return err
		}
	}
	if svgOut != "" {
		if err := os.WriteFile(svgOut, []byte(sim.SVG(g, pl, s, 1000)), 0o644); err != nil {
			return err
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	st := s.ComputeStats()
	seq := pl.SequentialTime(g.TotalWeight())
	fmt.Printf("testbed    %s (size %d, %d tasks, %d edges)\n", testbed, size, g.NumNodes(), g.NumEdges())
	fmt.Printf("platform   %d processors, model %s, link %g, c %g\n", pl.NumProcs(), model, link, commRatio)
	fmt.Printf("heuristic  %s\n", heuristic)
	fmt.Printf("makespan   %.6g\n", st.Makespan)
	fmt.Printf("sequential %.6g (fastest processor)\n", seq)
	fmt.Printf("speedup    %.4f (bound %.4g)\n", seq/st.Makespan, pl.MaxSpeedup())
	if lb, err := bound.Best(g, pl, model); err == nil && lb > 0 {
		fmt.Printf("gap        %.3fx over the %.6g lower bound\n", st.Makespan/lb, lb)
	}
	fmt.Printf("comms      %d messages, %.6g total time\n", st.CommCount, st.TotalCommTime)
	fmt.Printf("utilization %.1f%%\n", 100*st.Utilization)
	if gantt {
		fmt.Println()
		fmt.Print(sim.Gantt(g, pl, s, width))
	}
	if trace {
		fmt.Println()
		fmt.Print(sim.Trace(g, s))
	}
	if chainOut {
		chain, err := sim.CriticalChain(g, s, model)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(sim.ChainReport(chain))
	}
	return nil
}
