package main

// The go vet -vettool driving protocol ("unitchecker"): cmd/go invokes
// the tool once per package with a single argument, the path to a JSON
// config describing the compilation unit — source files, the import map
// and the export-data file of every dependency (vet type-checks nothing
// itself). The tool must type-check the unit, run its analyzers, write
// the facts output file (empty here: no analyzer uses cross-package
// facts), and report diagnostics on stderr with exit code 2 (or as JSON
// on stdout with exit 0 when -json is set). This mirrors
// golang.org/x/tools/go/analysis/unitchecker without the dependency —
// the standard library's gc importer reads the export data vet hands us.

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"

	"oneport/internal/analysis"
)

// vetConfig is the subset of cmd/go's vet config the tool consumes.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	// ImportMap maps source-level import paths to canonical package
	// paths; PackageFile maps canonical paths to export data files.
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: parse %s: %v\n", cfgPath, err)
		return 1
	}

	// facts first: downstream units expect the vetx file to exist even
	// though this suite records no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "schedlint: write facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, compilerOf(cfg), func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	pkg, err := analysis.CheckFiles(importPathOf(cfg), cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	pkg.ImportPath = cfg.ImportPath // keep any " [test]" marker out of prefix checks via Polices
	diags, err := analysis.Run(pkg, analysis.All(), false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	if asJSON {
		return emitJSON(cfg, diags)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func compilerOf(cfg vetConfig) string {
	if cfg.Compiler == "" || cfg.Compiler == "gc" {
		return "gc"
	}
	return cfg.Compiler
}

// importPathOf returns the unit's import path usable as a types package
// path (the test-variant suffix " [pkg.test]" stripped).
func importPathOf(cfg vetConfig) string {
	p := cfg.ImportPath
	if i := strings.IndexByte(p, ' '); i >= 0 {
		p = p[:i]
	}
	return p
}

// emitJSON prints diagnostics in the unitchecker JSON shape:
// {"pkgpath": {"analyzer": [{posn, message}, ...]}}.
func emitJSON(cfg vetConfig, diags []analysis.Diagnostic) int {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    d.Pos.String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{cfg.ImportPath: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	return 0
}
