// Schedlint mechanically enforces the repo's documented invariants —
// determinism (detorder, wallclock), pooling (scratchpair), locking
// (lockio) and context propagation (ctxhttp) — as compiler-grade
// diagnostics. It runs two ways:
//
//	schedlint ./...                       # standalone: loads and checks packages itself
//	go vet -vettool=$(pwd)/schedlint ./... # driven by go vet (unitchecker protocol)
//
// Standalone mode exits 1 when any finding survives; vet mode follows
// the unitchecker contract (plain diagnostics on stderr, exit 2).
// Findings are suppressed per line with `//schedlint:allow <analyzer>
// <justification>`; see DESIGN.md "Static analysis" for the policy.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"oneport/internal/analysis"
)

func main() {
	var (
		versionFlag = flag.String("V", "", "print version and exit (go vet tool protocol)")
		flagsFlag   = flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet tool protocol)")
		jsonFlag    = flag.Bool("json", false, "emit JSON diagnostics (go vet tool protocol)")
		listFlag    = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: schedlint [packages]   (standalone)\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(command -v schedlint) [packages]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion()
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	case *listFlag:
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], *jsonFlag))
	}
	os.Exit(standalone(args))
}

// printVersion answers `schedlint -V=full`, which cmd/go uses as the
// tool's cache key: the output must change whenever the binary does, so
// it embeds a hash of the executable.
func printVersion() {
	name := "schedlint"
	sum := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				sum = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, sum)
}

// standalone loads patterns itself and checks every policed package.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analysis.All(), false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", found)
		return 1
	}
	return 0
}
