// Command schedcheck validates an externally produced schedule (JSON, as
// emitted by `onesched -json`) against a task graph and a platform, under
// any communication model. It prints the verdict, summary statistics and,
// on request, the critical chain — so schedules produced by other tools (or
// by hand) can be checked against the exact model rules.
//
//	onesched -testbed lu -size 10 -json > sched.json
//	graphgen -testbed lu -size 10 -format json > graph.json
//	schedcheck -graph graph.json -schedule sched.json -model oneport
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"oneport/internal/cli"
	"oneport/internal/graph"
	"oneport/internal/sched"
	"oneport/internal/sim"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "task graph JSON (required)")
		schedPath = flag.String("schedule", "", "schedule JSON (required)")
		modelName = flag.String("model", "oneport", "communication model to validate against")
		procSpec  = flag.String("procs", "6x5,10x3,15x2", "processors as cycle[xCount] list")
		link      = flag.Float64("link", 1, "uniform link cost per data item")
		chain     = flag.Bool("chain", false, "print the critical chain on success")
	)
	flag.Parse()

	if err := run(*graphPath, *schedPath, *modelName, *procSpec, *link, *chain); err != nil {
		fmt.Fprintln(os.Stderr, "schedcheck:", err)
		os.Exit(1)
	}
}

func run(graphPath, schedPath, modelName, procSpec string, link float64, chain bool) error {
	if graphPath == "" || schedPath == "" {
		return fmt.Errorf("both -graph and -schedule are required")
	}
	gdata, err := os.ReadFile(graphPath)
	if err != nil {
		return err
	}
	var g graph.Graph
	if err := json.Unmarshal(gdata, &g); err != nil {
		return fmt.Errorf("parsing %s: %w", graphPath, err)
	}
	sdata, err := os.ReadFile(schedPath)
	if err != nil {
		return err
	}
	var s sched.Schedule
	if err := json.Unmarshal(sdata, &s); err != nil {
		return fmt.Errorf("parsing %s: %w", schedPath, err)
	}
	pl, err := cli.ParsePlatform(procSpec, link)
	if err != nil {
		return err
	}
	model, err := cli.ParseModel(modelName)
	if err != nil {
		return err
	}
	if err := sched.Validate(&g, pl, &s, model); err != nil {
		return fmt.Errorf("INVALID under %s: %w", model, err)
	}
	st := s.ComputeStats()
	fmt.Printf("VALID under %s\n", model)
	fmt.Printf("tasks      %d on %d processors\n", g.NumNodes(), pl.NumProcs())
	fmt.Printf("makespan   %.6g\n", st.Makespan)
	fmt.Printf("comms      %d messages, %.6g total time\n", st.CommCount, st.TotalCommTime)
	fmt.Printf("utilization %.1f%%\n", 100*st.Utilization)
	if chain {
		c, err := sim.CriticalChain(&g, &s, model)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(sim.ChainReport(c))
	}
	return nil
}
