// Command graphgen emits a testbed task graph in Graphviz dot or JSON form,
// for inspection or for feeding external tools.
//
//	graphgen -testbed laplace -size 4 -format dot | dot -Tpng > laplace.png
//	graphgen -testbed lu -size 6 -format json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"oneport/internal/exp"
	"oneport/internal/testbeds"
)

func main() {
	var (
		testbed   = flag.String("testbed", "lu", "task graph family")
		size      = flag.Int("size", 6, "problem size")
		commRatio = flag.Float64("c", exp.CommRatio, "communication-to-computation ratio")
		format    = flag.String("format", "dot", "output format: dot or json")
	)
	flag.Parse()

	if err := run(*testbed, *size, *commRatio, *format); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(testbed string, size int, commRatio float64, format string) error {
	g, err := testbeds.ByName(testbed, size, commRatio)
	if err != nil {
		return err
	}
	switch format {
	case "dot":
		fmt.Print(g.DOT(fmt.Sprintf("%s_%d", testbed, size)))
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(g)
	default:
		return fmt.Errorf("unknown format %q (want dot or json)", format)
	}
	return nil
}
