// Command schedserve runs the scheduling service and the sharded sweep
// protocol (internal/service, internal/service/sweep).
//
// Serve mode (default) exposes POST /schedule, POST /batch, the scheduling
// -session surface (POST /session, POST /session/{id}/delta, DELETE
// /session/{id}; sized by -max-sessions and -session-ttl, replica-local),
// GET /healthz, GET /stats and GET /metrics (the same counters in
// Prometheus text format); -worker additionally mounts the sweep worker
// endpoint POST /sweep/run so the process can take shards from a
// coordinator:
//
//	schedserve -addr :8642 -pool 8 -cache 1024
//	schedserve -addr :8643 -worker
//
// -admission puts a deadline- and priority-aware admission queue in front
// of the compute pool: every cold run is cost-estimated (task count ×
// heuristic weight) and queued, shed with 503 + a drain-rate Retry-After
// when the estimated wait exceeds -queue-budget (default 2s) or the
// client's deadline, and subject to a brownout ladder that sheds the
// lowest-priority classes first as the queue deepens (batch/sweep, then
// cold expensive, then cold cheap — cache hits and session deltas always
// serve). -tenant-quotas assigns per-tenant (X-API-Key header) token-bucket
// rate limits, concurrency caps and fair-share weights as a JSON object;
// tenants not named get the unlimited default:
//
//	schedserve -admission -queue-budget 3s \
//	  -tenant-quotas '{"acme":{"rate":5000,"burst":10000,"max_concurrent":2,"weight":2}}'
//
// -peers joins the replica into a distributed encoded-response cache: a
// consistent-hash ring maps each canonical request key to one owner
// replica, and a replica that misses locally on a key it does not own asks
// the owner (POST /cache/peer) before computing, so the fleet runs each
// distinct request once. Every replica must be started with the SAME -peers
// list (it may include the replica itself) plus -self naming its own URL in
// that list; a replica whose owner peer is down computes locally until the
// peer recovers:
//
//	schedserve -addr :8642 -self http://h1:8642 -peers http://h1:8642,http://h2:8642
//	schedserve -addr :8642 -self http://h2:8642 -peers http://h1:8642,http://h2:8642
//
// -admin-token enables the ring admin endpoints (GET/POST /ring, bearer
// auth), through which an operator pushes new membership epochs to a live
// fleet — replicas can join or leave without a restart, and relays routed
// under an older epoch are rejected rather than mis-served. -timeout caps
// each compute; runs that exceed it answer 503 with Retry-After. A -worker
// replica that is also a ring member fills cold sweep jobs from the job
// key's owning worker through the same ring and circuit breakers.
//
// -session-journal-dir makes sessions durable: the open and every acked
// delta are write-ahead-journaled (length-prefixed, checksummed records;
// -session-fsync picks always/none), and a restarted replica replays the
// directory back into byte-identical sessions before /readyz reports
// ready. On SIGINT/SIGTERM the server first syncs every journal and hands
// its live sessions to each id's ring owner (POST /session/peer/import on
// the survivors; requests for moved sessions answer 307 + X-Session-Owner
// so clients re-pin), then stops accepting connections and drains
// in-flight runs for up to -drain before exiting.
//
// Coordinator mode feeds a figure sweep or a B-sweep to running workers
// with work-stealing dispatch (each worker pulls the next job as it
// finishes the last; failed jobs requeue onto the survivors) and prints the
// merged result — the same numbers, in the same table, as the
// single-process cmd/experiments and cmd/bsweep runs:
//
//	schedserve -sweep fig8 -sizes quick -shards http://h1:8642,http://h2:8642
//	schedserve -bsweep lu -size 60 -bs 1,2,4,38 -shards http://h1:8642
//
// -example emits a ready-to-POST request JSON for a testbed instance, for
// smoke tests and quickstarts:
//
//	schedserve -example lu:10 | curl -s -d @- localhost:8642/schedule
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"oneport/internal/cli"
	"oneport/internal/exp"
	"oneport/internal/platform"
	"oneport/internal/service"
	"oneport/internal/service/admit"
	"oneport/internal/service/breaker"
	"oneport/internal/service/journal"
	"oneport/internal/service/sweep"
	"oneport/internal/testbeds"
)

func main() {
	var (
		addr     = flag.String("addr", ":8642", "listen address (serve mode)")
		pool     = flag.Int("pool", 0, "worker pool size (0: GOMAXPROCS)")
		cacheSz  = flag.Int("cache", 256, "LRU result-cache entries (negative disables)")
		probePar = flag.Int("probe-par", 1, "per-run probe parallelism")
		worker   = flag.Bool("worker", false, "also serve the sweep worker endpoint /sweep/run")
		peers    = flag.String("peers", "", "comma list of ALL replica base URLs forming the distributed cache ring (same list on every replica)")
		self     = flag.String("self", "", "this replica's base URL within -peers")
		admin    = flag.String("admin-token", "", "bearer token for the ring admin endpoints GET/POST /ring (empty disables them)")
		timeout  = flag.Duration("timeout", 0, "per-request compute deadline; exceeded runs answer 503 (0 disables)")
		drain    = flag.Duration("drain", 30*time.Second, "in-flight drain timeout on SIGINT/SIGTERM")
		maxSess  = flag.Int("max-sessions", 0, "scheduling-session table capacity (0: default 256)")
		sessTTL  = flag.Duration("session-ttl", 0, "idle TTL before a session may be evicted (0: default 15m; negative: never)")
		sessDir  = flag.String("session-journal-dir", "", "directory for per-session write-ahead journals; sessions survive crashes and restarts (empty: volatile sessions)")
		sessSync = flag.String("session-fsync", "always", "journal fsync policy: always (acked deltas survive power loss) or none (page cache only; requires -session-journal-dir)")

		admission    = flag.Bool("admission", false, "enable admission control: deadline-aware queueing, per-tenant quotas, brownout ladder")
		queueBudget  = flag.Duration("queue-budget", 0, "max estimated admission-queue wait before shedding (0: default 2s; requires -admission)")
		tenantQuotas = flag.String("tenant-quotas", "", `per-tenant quota JSON, e.g. '{"acme":{"rate":5000,"max_concurrent":2,"weight":2}}' (requires -admission)`)

		sweepFig  = flag.String("sweep", "", "coordinator mode: shard this figure (fig7..fig12) across -shards")
		bsweepTb  = flag.String("bsweep", "", "coordinator mode: shard a B-sweep on this testbed across -shards")
		shards    = flag.String("shards", "", "comma list of worker base URLs for coordinator mode")
		sizesSpec = flag.String("sizes", "quick", `figure sweep sizes: "quick", "paper" or a comma list`)
		size      = flag.Int("size", 60, "problem size for -bsweep")
		bsSpec    = flag.String("bs", "", "comma list of B values for -bsweep (default 1..perfect-balance count)")
		scanDepth = flag.Int("scan", 0, "ILHA Step-1 scan depth for -bsweep")
		modelName = flag.String("model", "oneport", "communication model")

		example = flag.String("example", "", `print a request JSON for "testbed:size" (e.g. lu:10) and exit`)
	)
	flag.Parse()

	var err error
	switch {
	case *example != "":
		err = printExample(*example, *modelName)
	case *sweepFig != "":
		err = coordinateFigure(*sweepFig, *sizesSpec, *modelName, *shards)
	case *bsweepTb != "":
		err = coordinateBSweep(*bsweepTb, *size, *bsSpec, *scanDepth, *modelName, *shards)
	default:
		var admCfg *admit.Config
		admCfg, err = admissionConfig(*admission, *queueBudget, *tenantQuotas)
		var jstore *journal.Store
		if err == nil {
			jstore, err = journalStore(*sessDir, *sessSync)
		}
		if err == nil {
			err = serve(*addr, *pool, *cacheSz, *probePar, *worker, *self, *peers, *admin, *timeout, *drain, *maxSess, *sessTTL, admCfg, jstore)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedserve:", err)
		os.Exit(1)
	}
}

// journalStore resolves the session-journal flags: nil when no directory
// is given, an error when -session-fsync is tuned without one.
func journalStore(dir, fsync string) (*journal.Store, error) {
	pol, err := journal.ParsePolicy(fsync)
	if err != nil {
		return nil, err
	}
	if dir == "" {
		if pol != journal.SyncAlways {
			return nil, fmt.Errorf("-session-fsync requires -session-journal-dir")
		}
		return nil, nil
	}
	return journal.Open(journal.Config{Dir: dir, Policy: pol})
}

// admissionConfig resolves the admission flags: nil when disabled, an
// error when quota/budget flags are set without -admission.
func admissionConfig(enabled bool, queueBudget time.Duration, quotaSpec string) (*admit.Config, error) {
	if !enabled {
		if queueBudget != 0 || quotaSpec != "" {
			return nil, fmt.Errorf("-queue-budget and -tenant-quotas require -admission")
		}
		return nil, nil
	}
	cfg := &admit.Config{QueueBudget: queueBudget}
	if quotaSpec != "" {
		dec := json.NewDecoder(strings.NewReader(quotaSpec))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg.Quotas); err != nil {
			return nil, fmt.Errorf("-tenant-quotas: %w", err)
		}
	}
	return cfg, nil
}

func serve(addr string, pool, cacheSz, probePar int, worker bool, self, peers, adminToken string, timeout, drain time.Duration, maxSessions int, sessionTTL time.Duration, admCfg *admit.Config, jstore *journal.Store) error {
	var peerList []string
	if peers != "" {
		if self == "" {
			return fmt.Errorf("-peers needs -self (this replica's URL within the peer list)")
		}
		var err error
		if peerList, err = parseList(peers); err != nil {
			return fmt.Errorf("-peers: %w", err)
		}
	}
	srv := service.New(service.Config{
		PoolSize: pool, CacheSize: cacheSz, ProbeParallelism: probePar,
		Self: self, Peers: peerList,
		AdminToken: adminToken, RequestTimeout: timeout,
		MaxSessions: maxSessions, SessionTTL: sessionTTL,
		SessionJournal: jstore,
		Admission:      admCfg,
	})
	if jstore != nil {
		// replay journaled sessions concurrently with serving: /readyz
		// stays not-ready until the replay finishes, so load balancers
		// hold traffic while pinned ids are still being rebuilt
		go func() {
			recovered, failed, err := srv.RecoverSessions(context.Background())
			if err != nil {
				log.Printf("schedserve: session recovery failed: %v", err)
				return
			}
			if recovered > 0 || failed > 0 {
				log.Printf("schedserve: recovered %d journaled sessions (%d failed)", recovered, failed)
			}
		}()
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	role := "scheduler"
	if worker {
		if self != "" {
			// share the service's live ring and breakers with the sweep
			// worker, so cold jobs fill from their owning worker and both
			// paths agree on peer health and membership epoch
			sweep.EnableFleet(&sweep.Fleet{
				Self:     self,
				Owner:    srv.RingOwner,
				Epoch:    srv.RingEpoch,
				Breakers: srv.PeerBreakers(),
			})
		}
		// shard traffic is Background class on the same slots and brownout
		// ladder as cold /schedule runs (no-op when admission is off)
		sweep.EnableAdmission(srv.Admission())
		mux.Handle("/sweep/", sweep.Handler())
		role = "scheduler+sweep-worker"
	}
	if admCfg != nil {
		role += ", admission control on"
	}
	if n := srv.StatsSnapshot().Peers; n > 0 {
		role = fmt.Sprintf("%s, cache ring of %d replicas", role, n)
	}
	log.Printf("schedserve: %s listening on %s", role, addr)
	hs := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// drain on SIGINT/SIGTERM: stop accepting, let in-flight scheduler runs
	// finish writing instead of dying mid-response
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills immediately
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		// flush+sync journals and hand live sessions to their ring owners
		// BEFORE closing the listener: the handoffs need the survivors
		// reachable, and in-flight deltas finish or 307 while it runs
		if moved, kept := srv.DrainSessions(sctx); moved > 0 || kept > 0 {
			log.Printf("schedserve: session handoff: %d moved to ring owners, %d kept journaled", moved, kept)
		}
		log.Printf("schedserve: shutdown signal; draining %d in-flight runs (timeout %v)",
			srv.StatsSnapshot().InFlight, drain)
		if err := hs.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		log.Printf("schedserve: drained cleanly")
		return nil
	}
}

// parseList splits a comma list of base URLs, dropping empty items.
func parseList(spec string) ([]string, error) {
	var out []string
	for _, s := range strings.Split(spec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty URL list %q", spec)
	}
	return out, nil
}

func parseShards(spec string) ([]string, error) {
	out, err := parseList(spec)
	if err != nil {
		return nil, fmt.Errorf("coordinator mode needs -shards url1,url2,...")
	}
	return out, nil
}

func coordinateFigure(figID, sizesSpec, modelName, shards string) error {
	workers, err := parseShards(shards)
	if err != nil {
		return err
	}
	fig, err := exp.FigureByID(figID)
	if err != nil {
		return err
	}
	model, err := cli.ParseModel(modelName)
	if err != nil {
		return err
	}
	var sizes []int
	switch sizesSpec {
	case "quick":
		sizes = exp.QuickSizes()
	case "paper":
		sizes = exp.PaperSizes()
	default:
		if sizes, err = cli.ParseInts(sizesSpec); err != nil {
			return err
		}
	}

	co := &sweep.Coordinator{Workers: workers, Breakers: breaker.NewSet(breaker.Config{})}
	jobs := sweep.FigureJobs(fig, modelName, sizes)
	start := time.Now()
	results, err := co.Run(context.Background(), nil, jobs)
	if err != nil {
		return err
	}
	series, err := sweep.MergeFigure(fig, model, results, len(jobs))
	if err != nil {
		return err
	}
	fmt.Printf("sharded across %d workers in %v (%d chunks, %d requeued, %d worker cache hits, %d ring fills)\n",
		len(workers), time.Since(start).Round(time.Millisecond),
		co.Stats.Chunks, co.Stats.Requeues, co.Stats.CacheHits, co.Stats.RingFills)
	fmt.Print(series.Table())
	return nil
}

func coordinateBSweep(testbed string, size int, bsSpec string, scanDepth int, modelName, shards string) error {
	workers, err := parseShards(shards)
	if err != nil {
		return err
	}
	if _, err := cli.ParseModel(modelName); err != nil {
		return err
	}
	var bs []int
	if bsSpec == "" {
		max, err := platform.Paper().PerfectBalanceCount()
		if err != nil {
			return err
		}
		for b := 1; b <= max; b++ {
			bs = append(bs, b)
		}
	} else if bs, err = cli.ParseInts(bsSpec); err != nil {
		return err
	}

	co := &sweep.Coordinator{Workers: workers, Breakers: breaker.NewSet(breaker.Config{})}
	jobs := sweep.BSweepJobs(testbed, size, modelName, scanDepth, bs)
	results, err := co.Run(context.Background(), nil, jobs)
	if err != nil {
		return err
	}
	speedups, err := sweep.MergeBSweep(results, len(jobs))
	if err != nil {
		return err
	}

	sorted := append([]int(nil), bs...)
	sort.Ints(sorted)
	fmt.Printf("%s size %d, %s model, scan depth %d — sharded across %d workers\n",
		testbed, size, modelName, scanDepth, len(workers))
	fmt.Printf("%6s %12s\n", "B", "speedup")
	bestB, bestSp := sorted[0], speedups[sorted[0]]
	for _, b := range sorted {
		fmt.Printf("%6d %12.4f\n", b, speedups[b])
		if speedups[b] > bestSp {
			bestB, bestSp = b, speedups[b]
		}
	}
	fmt.Printf("best B = %d (speedup %.4f)\n", bestB, bestSp)
	return nil
}

func printExample(spec, modelName string) error {
	name, sizeStr, ok := strings.Cut(spec, ":")
	if !ok {
		return fmt.Errorf("-example wants testbed:size, got %q", spec)
	}
	n, err := strconv.Atoi(sizeStr)
	if err != nil {
		return fmt.Errorf("-example size %q: %w", sizeStr, err)
	}
	g, err := testbeds.ByName(name, n, exp.CommRatio)
	if err != nil {
		return err
	}
	req := service.Request{
		Graph:     g,
		Platform:  platform.Paper(),
		Heuristic: "ilha",
		Model:     modelName,
		Options:   service.Options{B: 4},
	}
	data, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(data))
	return err
}
