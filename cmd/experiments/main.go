// Command experiments regenerates the paper's evaluation (Figures 7–12):
// HEFT versus ILHA under the bi-directional one-port model on the six
// testbeds, with the paper's platform (5× cycle 6, 3× cycle 10, 2× cycle
// 15), c = 10 and the per-figure best B.
//
//	experiments                 # quick sizes, all figures
//	experiments -sizes paper    # the paper's 100..500 sweep (minutes)
//	experiments -fig fig9       # a single figure
//	experiments -model macro    # same experiments under macro-dataflow
//	experiments -spectrum lu    # all five communication models side by side
//	experiments -compare 10     # every heuristic on a mixed workload suite
//	experiments -csv            # figure output as CSV for plotting
package main

import (
	"flag"
	"fmt"
	"os"

	"oneport/internal/cli"
	"oneport/internal/exp"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
)

func main() {
	var (
		figID     = flag.String("fig", "all", "figure to regenerate (fig7..fig12 or all)")
		sizesSpec = flag.String("sizes", "quick", `problem sizes: "quick", "paper", or a comma list like "50,100"`)
		modelName = flag.String("model", "oneport", "communication model (oneport, macro, uniport, nooverlap, linkcontention)")
		spectrum  = flag.String("spectrum", "", "run the 5-model spectrum on this testbed instead of figures")
		size      = flag.Int("size", 30, "problem size for -spectrum")
		b         = flag.Int("B", 38, "ILHA chunk size for -spectrum and -compare")
		compare   = flag.Int("compare", 0, "compare every heuristic on a mixed suite of this size")
		csv       = flag.Bool("csv", false, "emit figure series as CSV instead of tables")
		csweep    = flag.String("csweep", "", "sweep the communication ratio on this testbed")
		hetsweep  = flag.String("het", "", "sweep platform heterogeneity on this testbed")
	)
	flag.Parse()

	if *csweep != "" {
		pts, err := exp.CSweep(*csweep, *size, *b, platform.Paper(), []float64{1, 2, 5, 10, 20})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Print(exp.CSweepTable(*csweep, *size, pts))
		return
	}
	if *hetsweep != "" {
		pts, err := exp.HeterogeneitySweep(*hetsweep, *size, *b)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Print(exp.HetTable(*hetsweep, *size, pts))
		return
	}

	if *compare > 0 {
		model, err := cli.ParseModel(*modelName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		wls, err := exp.StandardWorkloads(*compare)
		if err == nil {
			var cmp *exp.Comparison
			cmp, err = exp.Compare(wls, platform.Paper(), model, heuristics.ILHAOptions{B: *b})
			if err == nil {
				fmt.Print(cmp.Table())
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	if *spectrum != "" {
		sp, err := exp.RunSpectrum(*spectrum, *size, *b, platform.Paper())
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Print(sp.Table())
		return
	}

	if err := run(*figID, *sizesSpec, *modelName, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(figID, sizesSpec, modelName string, csv bool) error {
	model, err := cli.ParseModel(modelName)
	if err != nil {
		return err
	}
	var sizes []int
	switch sizesSpec {
	case "quick":
		sizes = exp.QuickSizes()
	case "paper":
		sizes = exp.PaperSizes()
	default:
		sizes, err = cli.ParseInts(sizesSpec)
		if err != nil {
			return err
		}
	}
	figs := exp.Figures
	if figID != "all" {
		f, err := exp.FigureByID(figID)
		if err != nil {
			return err
		}
		figs = []exp.Figure{f}
	}
	pl := platform.Paper()
	if !csv {
		fmt.Printf("platform: 10 processors (5x t=6, 3x t=10, 2x t=15), speedup bound %.4g\n",
			exp.SpeedupBound(pl))
		fmt.Printf("FORK-JOIN analytic speedup cap: %.4g\n\n", exp.ForkJoinSpeedupCap(1, 6, exp.CommRatio))
	}
	for _, fig := range figs {
		s, err := exp.Run(fig, pl, model, sizes)
		if err != nil {
			return err
		}
		if csv {
			fmt.Printf("# %s\n%s\n", fig.ID, s.CSV())
		} else {
			fmt.Println(s.Table())
		}
	}
	return nil
}
