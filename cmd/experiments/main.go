// Command experiments regenerates the paper's evaluation (Figures 7–12):
// HEFT versus ILHA under the bi-directional one-port model on the six
// testbeds, with the paper's platform (5× cycle 6, 3× cycle 10, 2× cycle
// 15), c = 10 and the per-figure best B.
//
//	experiments                 # quick sizes, all figures
//	experiments -sizes paper    # the paper's 100..500 sweep (minutes)
//	experiments -fig fig9       # a single figure
//	experiments -model macro    # same experiments under macro-dataflow
//	experiments -spectrum lu    # all five communication models side by side
//	experiments -compare 10     # every heuristic on a mixed workload suite
//	experiments -csv            # figure output as CSV for plotting
//
// With -server the figure runs are driven through a running schedserve's
// POST /batch endpoint instead of in-process calls — same tables, same CSV,
// byte for byte — so one warm server (result cache, pooled scratch) can
// serve many figure regenerations:
//
//	experiments -server http://localhost:8642 -fig fig8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"oneport/internal/cli"
	"oneport/internal/exp"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/service"
)

func main() {
	var (
		figID     = flag.String("fig", "all", "figure to regenerate (fig7..fig12 or all)")
		sizesSpec = flag.String("sizes", "quick", `problem sizes: "quick", "paper", or a comma list like "50,100"`)
		modelName = flag.String("model", "oneport", "communication model (oneport, macro, uniport, nooverlap, linkcontention)")
		spectrum  = flag.String("spectrum", "", "run the 5-model spectrum on this testbed instead of figures")
		size      = flag.Int("size", 30, "problem size for -spectrum")
		b         = flag.Int("B", 38, "ILHA chunk size for -spectrum and -compare")
		compare   = flag.Int("compare", 0, "compare every heuristic on a mixed suite of this size")
		csv       = flag.Bool("csv", false, "emit figure series as CSV instead of tables")
		csweep    = flag.String("csweep", "", "sweep the communication ratio on this testbed")
		hetsweep  = flag.String("het", "", "sweep platform heterogeneity on this testbed")
		server    = flag.String("server", "", "drive figure runs through this schedserve base URL (POST /batch) instead of in-process")
	)
	flag.Parse()

	// -server only drives the figure tables (the /batch path); the other
	// modes run in-process. Reject the combination instead of silently
	// ignoring the flag.
	if *server != "" && (*csweep != "" || *hetsweep != "" || *compare > 0 || *spectrum != "") {
		fmt.Fprintln(os.Stderr, "experiments: -server applies only to figure runs (not -csweep/-het/-compare/-spectrum)")
		os.Exit(1)
	}

	if *csweep != "" {
		pts, err := exp.CSweep(*csweep, *size, *b, platform.Paper(), []float64{1, 2, 5, 10, 20})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Print(exp.CSweepTable(*csweep, *size, pts))
		return
	}
	if *hetsweep != "" {
		pts, err := exp.HeterogeneitySweep(*hetsweep, *size, *b)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Print(exp.HetTable(*hetsweep, *size, pts))
		return
	}

	if *compare > 0 {
		model, err := cli.ParseModel(*modelName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		wls, err := exp.StandardWorkloads(*compare)
		if err == nil {
			var cmp *exp.Comparison
			cmp, err = exp.Compare(wls, platform.Paper(), model, heuristics.ILHAOptions{B: *b})
			if err == nil {
				fmt.Print(cmp.Table())
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	if *spectrum != "" {
		sp, err := exp.RunSpectrum(*spectrum, *size, *b, platform.Paper())
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Print(sp.Table())
		return
	}

	if err := run(*figID, *sizesSpec, *modelName, *csv, *server); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(figID, sizesSpec, modelName string, csv bool, server string) error {
	model, err := cli.ParseModel(modelName)
	if err != nil {
		return err
	}
	var sizes []int
	switch sizesSpec {
	case "quick":
		sizes = exp.QuickSizes()
	case "paper":
		sizes = exp.PaperSizes()
	default:
		sizes, err = cli.ParseInts(sizesSpec)
		if err != nil {
			return err
		}
	}
	figs := exp.Figures
	if figID != "all" {
		f, err := exp.FigureByID(figID)
		if err != nil {
			return err
		}
		figs = []exp.Figure{f}
	}
	pl := platform.Paper()
	if !csv {
		fmt.Printf("platform: 10 processors (5x t=6, 3x t=10, 2x t=15), speedup bound %.4g\n",
			exp.SpeedupBound(pl))
		fmt.Printf("FORK-JOIN analytic speedup cap: %.4g\n\n", exp.ForkJoinSpeedupCap(1, 6, exp.CommRatio))
	}
	var client *service.Client
	if server != "" {
		client = &service.Client{BaseURL: server}
	}
	for _, fig := range figs {
		var s *exp.Series
		if client != nil {
			s, err = exp.RunViaService(context.Background(), client, fig, pl, modelName, sizes)
		} else {
			s, err = exp.Run(fig, pl, model, sizes)
		}
		if err != nil {
			return err
		}
		if csv {
			fmt.Printf("# %s\n%s\n", fig.ID, s.CSV())
		} else {
			fmt.Println(s.Table())
		}
	}
	return nil
}
