// Command bsweep sweeps ILHA's chunk-size parameter B on one testbed and
// prints the speedup for every value, reproducing the §5.3 observation that
// the best B is testbed-dependent (the paper reports 4 for LU, 38 for
// LAPLACE/STENCIL/FORK-JOIN and 20 for DOOLITTLE/LDMt) and bounded by the
// perfect-balance count M = lcm(t_i)·Σ1/t_i (38 on the paper platform).
//
//	bsweep -testbed lu -size 100
//	bsweep -testbed stencil -size 60 -bs 2,10,20,38 -scan 1
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"oneport/internal/cli"
	"oneport/internal/exp"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

func main() {
	var (
		testbed   = flag.String("testbed", "lu", "task graph family")
		size      = flag.Int("size", 60, "problem size")
		bsSpec    = flag.String("bs", "", "comma list of B values (default: 1..perfect-balance count)")
		scanDepth = flag.Int("scan", 0, "ILHA Step-1 scan depth")
		modelName = flag.String("model", "oneport", "communication model")
	)
	flag.Parse()

	if err := run(*testbed, *size, *bsSpec, *scanDepth, *modelName); err != nil {
		fmt.Fprintln(os.Stderr, "bsweep:", err)
		os.Exit(1)
	}
}

func run(testbed string, size int, bsSpec string, scanDepth int, modelName string) error {
	pl := platform.Paper()
	model, err := cli.ParseModel(modelName)
	if err != nil {
		return err
	}
	var bs []int
	if bsSpec == "" {
		max, err := pl.PerfectBalanceCount()
		if err != nil {
			return err
		}
		for b := 1; b <= max; b++ {
			bs = append(bs, b)
		}
	} else {
		bs, err = cli.ParseInts(bsSpec)
		if err != nil {
			return err
		}
	}

	g, err := testbeds.ByName(testbed, size, exp.CommRatio)
	if err != nil {
		return err
	}
	seq := pl.SequentialTime(g.TotalWeight())
	heft, err := heuristics.HEFT(g, pl, model)
	if err != nil {
		return err
	}
	if err := sched.Validate(g, pl, heft, model); err != nil {
		return err
	}
	fmt.Printf("%s size %d (%d tasks), %s model, scan depth %d\n",
		testbed, size, g.NumNodes(), model, scanDepth)
	fmt.Printf("HEFT reference speedup: %.4f\n", seq/heft.Makespan())
	fmt.Printf("%6s %12s %12s\n", "B", "speedup", "comms")

	type row struct {
		b     int
		sp    float64
		comms int
	}
	var rows []row
	for _, b := range bs {
		s, err := heuristics.ILHA(g, pl, model, heuristics.ILHAOptions{B: b, ScanDepth: scanDepth})
		if err != nil {
			return err
		}
		if err := sched.Validate(g, pl, s, model); err != nil {
			return fmt.Errorf("B=%d: %w", b, err)
		}
		rows = append(rows, row{b: b, sp: seq / s.Makespan(), comms: s.CommCount()})
	}
	best := rows[0]
	for _, r := range rows {
		fmt.Printf("%6d %12.4f %12d\n", r.b, r.sp, r.comms)
		if r.sp > best.sp {
			best = r
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].sp > rows[j].sp })
	fmt.Printf("best B = %d (speedup %.4f)\n", best.b, best.sp)
	return nil
}
