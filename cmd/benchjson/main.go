// Command benchjson runs the figure benchmark suite and writes a
// machine-readable trajectory point (BENCH_<tag>.json by default), so
// successive changes to the scheduler hot path leave a comparable record.
//
//	benchjson -tag seed                      # writes BENCH_seed.json
//	benchjson -baseline BENCH_seed.json      # embeds the previous point
//	benchjson -only fig8,heft                # substring filter on spec names
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"oneport/internal/perf"
)

func main() {
	tag := flag.String("tag", time.Now().UTC().Format("20060102"), "tag naming this trajectory point")
	out := flag.String("o", "", "output path (default BENCH_<tag>.json)")
	baseline := flag.String("baseline", "", "previous report whose results are embedded as the baseline")
	only := flag.String("only", "", "comma-separated substrings; keep specs whose name contains any")
	flag.Parse()

	var keep func(string) bool
	if *only != "" {
		pats := strings.Split(*only, ",")
		keep = func(name string) bool {
			for _, p := range pats {
				if strings.Contains(name, strings.TrimSpace(p)) {
					return true
				}
			}
			return false
		}
	}

	// load the baseline before the (slow) benchmark run so a bad path
	// fails immediately
	var base []perf.Result
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		base, err = perf.LoadBaseline(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	rep, err := perf.Run(*tag, keep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Baseline = base

	path := *out
	if path == "" {
		path = "BENCH_" + *tag + ".json"
	}
	data, err := rep.Marshal()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	byName := map[string]perf.Result{}
	for _, r := range rep.Baseline {
		byName[r.Name] = r
	}
	for _, r := range rep.Results {
		line := fmt.Sprintf("%-22s %12.0f ns/op %10d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if b, ok := byName[r.Name]; ok && r.NsPerOp > 0 && b.NsPerOp > 0 {
			line += fmt.Sprintf("   %.2fx vs baseline", b.NsPerOp/r.NsPerOp)
		}
		fmt.Println(line)
	}
	fmt.Println("wrote", path)
}
