package oneport_test

import (
	"strings"
	"testing"

	"oneport"
)

// TestFacadeEndToEnd drives the whole public surface: build a graph and a
// platform, schedule with both heuristics under both models, validate,
// replay and render.
func TestFacadeEndToEnd(t *testing.T) {
	g := oneport.NewGraph(4)
	a := g.AddNode(1, "a")
	b := g.AddNode(2, "b")
	c := g.AddNode(2, "c")
	d := g.AddNode(1, "d")
	g.MustEdge(a, b, 3)
	g.MustEdge(a, c, 3)
	g.MustEdge(b, d, 3)
	g.MustEdge(c, d, 3)

	pl, err := oneport.UniformPlatform([]float64{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []oneport.Model{oneport.MacroDataflow, oneport.OnePort} {
		h, err := oneport.HEFT(g, pl, model)
		if err != nil {
			t.Fatal(err)
		}
		i, err := oneport.ILHA(g, pl, model, oneport.ILHAOptions{B: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []*oneport.Schedule{h, i} {
			if err := oneport.Validate(g, pl, s, model); err != nil {
				t.Fatalf("%v: %v", model, err)
			}
			r, err := oneport.Replay(g, pl, s, model)
			if err != nil {
				t.Fatal(err)
			}
			if r.Makespan() > s.Makespan()+1e-9 {
				t.Fatalf("%v: replay %g later than schedule %g", model, r.Makespan(), s.Makespan())
			}
		}
		if out := oneport.Gantt(g, pl, h, 40); !strings.Contains(out, "P0") {
			t.Fatalf("Gantt output malformed:\n%s", out)
		}
	}
}

func TestFacadePaperPlatform(t *testing.T) {
	pl := oneport.PaperPlatform()
	if pl.NumProcs() != 10 {
		t.Fatalf("paper platform has %d procs", pl.NumProcs())
	}
	if _, err := oneport.NewPlatform([]float64{1}, [][]float64{{0}}); err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
}
