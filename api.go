package oneport

// Facade: the library's day-to-day surface re-exported at the module root,
// so downstream code can depend on package oneport alone. The
// implementations live in internal/ packages (one per subsystem, see
// DESIGN.md); the aliases below are their stable public names.

import (
	"oneport/internal/graph"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/sim"
)

// Graph is a vertex- and edge-weighted task DAG (see internal/graph).
type Graph = graph.Graph

// NewGraph returns an empty task graph with a capacity hint of n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// Platform describes processors and interconnect (see internal/platform).
type Platform = platform.Platform

// NewPlatform builds a platform from cycle-times and a full link matrix.
func NewPlatform(cycleTimes []float64, link [][]float64) (*Platform, error) {
	return platform.New(cycleTimes, link)
}

// UniformPlatform builds a fully-connected platform with one link cost.
func UniformPlatform(cycleTimes []float64, linkCost float64) (*Platform, error) {
	return platform.Uniform(cycleTimes, linkCost)
}

// PaperPlatform returns the 10-processor platform of the paper's evaluation.
func PaperPlatform() *Platform { return platform.Paper() }

// Model selects the communication rules; Schedule records a result.
type (
	Model    = sched.Model
	Schedule = sched.Schedule
)

// The two communication models of the paper.
const (
	MacroDataflow = sched.MacroDataflow
	OnePort       = sched.OnePort
)

// ILHAOptions tunes the ILHA heuristic (chunk size B, scan depth, ...).
type ILHAOptions = heuristics.ILHAOptions

// HEFT schedules g on pl with the one-port (or macro-dataflow) adaptation
// of the Heterogeneous Earliest Finish Time heuristic.
func HEFT(g *Graph, pl *Platform, model Model) (*Schedule, error) {
	return heuristics.HEFT(g, pl, model)
}

// ILHA schedules g on pl with the Iso-Level Heterogeneous Allocation
// heuristic.
func ILHA(g *Graph, pl *Platform, model Model, opts ILHAOptions) (*Schedule, error) {
	return heuristics.ILHA(g, pl, model, opts)
}

// Validate checks a schedule against the model's rules (precedence,
// processor exclusivity, communication timing, port constraints).
func Validate(g *Graph, pl *Platform, s *Schedule, model Model) error {
	return sched.Validate(g, pl, s, model)
}

// Gantt renders an ASCII Gantt chart of a schedule.
func Gantt(g *Graph, pl *Platform, s *Schedule, width int) string {
	return sim.Gantt(g, pl, s, width)
}

// Replay re-derives a schedule's times from its decisions (allocation and
// resource orders) as early as possible; see internal/sim.
func Replay(g *Graph, pl *Platform, s *Schedule, model Model) (*Schedule, error) {
	return sim.Replay(g, pl, s, model)
}
