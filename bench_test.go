package oneport_test

// Benchmarks regenerating every figure of the paper's evaluation section
// plus the ablations called out in DESIGN.md. Each figure benchmark
// schedules one representative problem size with both HEFT and ILHA under
// the one-port model, validates the schedules, and reports the measured
// speedups as custom metrics, so `go test -bench .` both times the
// schedulers and reprints the paper's headline numbers.
//
// Default sizes are scaled down from the paper's 100..500 sweep to keep the
// suite fast; `go run ./cmd/experiments -sizes paper` runs the full sweep.

import (
	"testing"

	"oneport/internal/exp"
	"oneport/internal/heuristics"
	"oneport/internal/platform"
	"oneport/internal/sched"
	"oneport/internal/testbeds"
)

// benchFigure regenerates one figure point and reports both speedups.
func benchFigure(b *testing.B, figID string, size int) {
	b.Helper()
	b.ReportAllocs()
	fig, err := exp.FigureByID(figID)
	if err != nil {
		b.Fatal(err)
	}
	pl := platform.Paper()
	g, err := testbeds.ByName(fig.Testbed, size, exp.CommRatio)
	if err != nil {
		b.Fatal(err)
	}
	var p exp.Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err = exp.RunPoint(g, pl, sched.OnePort, fig.B)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.HEFTSpeedup, "heft-speedup")
	b.ReportMetric(p.ILHASpeedup, "ilha-speedup")
	b.ReportMetric(float64(p.Tasks), "tasks")
}

func BenchmarkFig07ForkJoin(b *testing.B)  { benchFigure(b, "fig7", 300) }
func BenchmarkFig08LU(b *testing.B)        { benchFigure(b, "fig8", 60) }
func BenchmarkFig09Laplace(b *testing.B)   { benchFigure(b, "fig9", 40) }
func BenchmarkFig10LDMt(b *testing.B)      { benchFigure(b, "fig10", 40) }
func BenchmarkFig11Doolittle(b *testing.B) { benchFigure(b, "fig11", 60) }
func BenchmarkFig12Stencil(b *testing.B)   { benchFigure(b, "fig12", 40) }

// BenchmarkAblationBSweep shows the §5.3 chunk-size sensitivity on LU: the
// critical path favours small B.
func BenchmarkAblationBSweep(b *testing.B) {
	b.ReportAllocs()
	pl := platform.Paper()
	g := testbeds.LU(60, exp.CommRatio)
	seq := pl.SequentialTime(g.TotalWeight())
	for _, chunk := range []int{2, 4, 10, 38} {
		b.Run(benchName("B", chunk), func(b *testing.B) {
			b.ReportAllocs()
			var sp float64
			for i := 0; i < b.N; i++ {
				s, err := heuristics.ILHA(g, pl, sched.OnePort, heuristics.ILHAOptions{B: chunk})
				if err != nil {
					b.Fatal(err)
				}
				sp = seq / s.Makespan()
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkAblationILHAVariants compares the §4.4 design variants: the
// paper's Step 1 (scan depth 0), the single-communication scan (depth 1),
// capacity-capped Step 2, and the communication-rescheduling third step.
func BenchmarkAblationILHAVariants(b *testing.B) {
	b.ReportAllocs()
	pl := platform.Paper()
	g := testbeds.Stencil(40, exp.CommRatio)
	seq := pl.SequentialTime(g.TotalWeight())
	variants := []struct {
		name string
		opts heuristics.ILHAOptions
	}{
		{"paper", heuristics.ILHAOptions{B: 38}},
		{"scan1", heuristics.ILHAOptions{B: 38, ScanDepth: 1}},
		{"cap2", heuristics.ILHAOptions{B: 38, CapStep2: true}},
		{"resched", heuristics.ILHAOptions{B: 38, RescheduleComms: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var sp float64
			var comms int
			for i := 0; i < b.N; i++ {
				s, err := heuristics.ILHA(g, pl, sched.OnePort, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				sp = seq / s.Makespan()
				comms = s.CommCount()
			}
			b.ReportMetric(sp, "speedup")
			b.ReportMetric(float64(comms), "comms")
		})
	}
}

// BenchmarkAblationPortModels quantifies the cost of realism: the same
// heuristic under macro-dataflow (unlimited ports) versus one-port.
func BenchmarkAblationPortModels(b *testing.B) {
	b.ReportAllocs()
	pl := platform.Paper()
	g := testbeds.Laplace(40, exp.CommRatio)
	seq := pl.SequentialTime(g.TotalWeight())
	for _, m := range []sched.Model{sched.MacroDataflow, sched.OnePort} {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			var sp float64
			for i := 0; i < b.N; i++ {
				s, err := heuristics.HEFT(g, pl, m)
				if err != nil {
					b.Fatal(err)
				}
				sp = seq / s.Makespan()
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkHEFTThroughput measures raw scheduling throughput (tasks/second)
// of the one-port HEFT implementation on a mid-size LU graph.
func BenchmarkHEFTThroughput(b *testing.B) {
	b.ReportAllocs()
	pl := platform.Paper()
	g := testbeds.LU(60, exp.CommRatio)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.HEFT(g, pl, sched.OnePort); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumNodes())*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationInsertion quantifies what HEFT's insertion (gap) policy
// buys over append-only placement — the timeline-policy ablation from
// DESIGN.md.
func BenchmarkAblationInsertion(b *testing.B) {
	b.ReportAllocs()
	pl := platform.Paper()
	g := testbeds.LU(40, exp.CommRatio)
	seq := pl.SequentialTime(g.TotalWeight())
	for _, v := range []struct {
		name string
		f    heuristics.Func
	}{{"insertion", heuristics.HEFT}, {"append", heuristics.HEFTAppend}} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var sp float64
			for i := 0; i < b.N; i++ {
				s, err := v.f(g, pl, sched.OnePort)
				if err != nil {
					b.Fatal(err)
				}
				sp = seq / s.Makespan()
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkAblationImprove measures the §4.4 post-allocation rescheduling
// pass: HEFT's schedule reworked by N stochastic fixed-allocation rounds.
func BenchmarkAblationImprove(b *testing.B) {
	b.ReportAllocs()
	pl := platform.Paper()
	g := testbeds.Stencil(24, exp.CommRatio)
	seq := pl.SequentialTime(g.TotalWeight())
	base, err := heuristics.HEFT(g, pl, sched.OnePort)
	if err != nil {
		b.Fatal(err)
	}
	for _, rounds := range []int{0, 8, 32} {
		b.Run(benchName("rounds", rounds), func(b *testing.B) {
			b.ReportAllocs()
			var sp float64
			for i := 0; i < b.N; i++ {
				s, err := heuristics.Improve(g, pl, sched.OnePort, base, rounds, 1)
				if err != nil {
					b.Fatal(err)
				}
				sp = seq / s.Makespan()
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkOptimalityGap runs the exhaustive active-schedule search on a
// tiny instance and reports how far HEFT and ILHA sit from the optimum.
func BenchmarkOptimalityGap(b *testing.B) {
	b.ReportAllocs()
	pl, err := platform.Uniform([]float64{1, 2}, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := testbeds.LU(4, exp.CommRatio)
	var gapH, gapI float64
	for i := 0; i < b.N; i++ {
		opt, complete, err := heuristics.Exhaustive(g, pl, sched.OnePort, 0)
		if err != nil || !complete {
			b.Fatalf("exhaustive: %v (complete=%v)", err, complete)
		}
		h, err := heuristics.HEFT(g, pl, sched.OnePort)
		if err != nil {
			b.Fatal(err)
		}
		il, err := heuristics.ILHA(g, pl, sched.OnePort, heuristics.ILHAOptions{B: 4})
		if err != nil {
			b.Fatal(err)
		}
		gapH = h.Makespan() / opt.Makespan()
		gapI = il.Makespan() / opt.Makespan()
	}
	b.ReportMetric(gapH, "heft-gap")
	b.ReportMetric(gapI, "ilha-gap")
}

// BenchmarkCompareHeuristics runs the whole registry on the mixed workload
// suite and reports the two headline means.
func BenchmarkCompareHeuristics(b *testing.B) {
	b.ReportAllocs()
	wls, err := exp.StandardWorkloads(8)
	if err != nil {
		b.Fatal(err)
	}
	pl := platform.Paper()
	var cmp *exp.Comparison
	for i := 0; i < b.N; i++ {
		cmp, err = exp.Compare(wls, pl, sched.OnePort, heuristics.ILHAOptions{B: 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range cmp.Results {
		if r.Heuristic == "heft" || r.Heuristic == "ilha" {
			b.ReportMetric(r.MeanSpeedup, r.Heuristic+"-mean-speedup")
		}
	}
}
