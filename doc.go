// Package oneport is a Go reproduction of "A Realistic Model and an
// Efficient Heuristic for Scheduling with Heterogeneous Processors"
// (Beaumont, Boudet, Robert — IPDPS 2002).
//
// The library implements task-graph scheduling on heterogeneous processors
// under the paper's bi-directional one-port communication model — at any
// instant each processor sends to at most one processor and receives from
// at most one — next to the classical macro-dataflow model, together with:
//
//   - the one-port adaptations of the HEFT and ILHA heuristics (§4) and the
//     literature baselines CPOP, DLS/GDL, BIL and PCT;
//   - the six evaluation testbeds (LU, LAPLACE, STENCIL, FORK-JOIN,
//     DOOLITTLE, LDMt) and the full experiment harness regenerating
//     Figures 7–12 (§5);
//   - the NP-completeness constructions FORK-SCHED and COMM-SCHED (§3 and
//     the appendix) with exact solvers cross-checking both reduction
//     directions;
//   - schedule validators for both models, a decision-replay simulator, and
//     ASCII Gantt rendering.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results. Entry points live under
// cmd/ (onesched, experiments, bsweep, graphgen) and examples/.
package oneport
