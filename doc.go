// Package oneport is a Go reproduction of "A Realistic Model and an
// Efficient Heuristic for Scheduling with Heterogeneous Processors"
// (Beaumont, Boudet, Robert — IPDPS 2002).
//
// The library implements task-graph scheduling on heterogeneous processors
// under the paper's bi-directional one-port communication model — at any
// instant each processor sends to at most one processor and receives from
// at most one — next to the classical macro-dataflow model, together with:
//
//   - the one-port adaptations of the HEFT and ILHA heuristics (§4) and the
//     literature baselines CPOP, DLS/GDL, BIL and PCT;
//   - the six evaluation testbeds (LU, LAPLACE, STENCIL, FORK-JOIN,
//     DOOLITTLE, LDMt) and the full experiment harness regenerating
//     Figures 7–12 (§5);
//   - the NP-completeness constructions FORK-SCHED and COMM-SCHED (§3 and
//     the appendix) with exact solvers cross-checking both reduction
//     directions;
//   - schedule validators for both models, a decision-replay simulator, and
//     ASCII Gantt rendering;
//   - a scheduling service (internal/service, cmd/schedserve): a concurrent
//     HTTP/JSON server with a bounded worker pool, pooled scheduler scratch,
//     singleflight request coalescing and an LRU result cache that can be
//     replicated across processes (a consistent-hash ring assigns each
//     canonical request key an owner replica; non-owners fill from the owner
//     instead of recomputing — see the -peers flag), plus a sharded sweep
//     coordinator that spreads the experiment harness across worker
//     processes.
//
// # Service quickstart
//
// Start a server (also a sweep worker) and post a scheduling request:
//
//	go run ./cmd/schedserve -addr :8642 -worker &
//	go run ./cmd/schedserve -example lu:10 | curl -s -d @- localhost:8642/schedule
//
// The response carries the validated schedule, its makespan/speedup and the
// canonical cache key; posting the identical request again is a cache hit
// ("cached":true). Run two replicas as one distributed cache — each request
// is computed once fleet-wide, whichever replica receives it:
//
//	go run ./cmd/schedserve -addr :8642 -self http://h1:8642 \
//	    -peers http://h1:8642,http://h2:8642
//
// Shard a figure sweep across two workers and get exactly
// the single-process cmd/experiments numbers:
//
//	go run ./cmd/schedserve -sweep fig8 -sizes quick \
//	    -shards http://host1:8642,http://host2:8642
//
// See README.md for a tour, DESIGN.md for the system inventory (the
// "Service layer" section documents endpoints, the job protocol, the cache
// key and the pooling invariants) and EXPERIMENTS.md for paper-versus-
// measured results. Entry points live under cmd/ (onesched, experiments,
// bsweep, graphgen, schedserve) and examples/.
package oneport
