package oneport_test

import (
	"fmt"

	"oneport"
)

// ExampleHEFT schedules a two-task pipeline on a two-processor platform and
// shows that the earliest-finish-time rule keeps the chain local when the
// communication is expensive.
func ExampleHEFT() {
	g := oneport.NewGraph(2)
	producer := g.AddNode(1, "producer")
	consumer := g.AddNode(1, "consumer")
	g.MustEdge(producer, consumer, 10) // 10 data items

	pl, err := oneport.UniformPlatform([]float64{1, 1}, 1)
	if err != nil {
		panic(err)
	}
	s, err := oneport.HEFT(g, pl, oneport.OnePort)
	if err != nil {
		panic(err)
	}
	if err := oneport.Validate(g, pl, s, oneport.OnePort); err != nil {
		panic(err)
	}
	fmt.Printf("makespan %g with %d communications\n", s.Makespan(), s.CommCount())
	// Output: makespan 2 with 0 communications
}

// ExampleILHA shows the chunked heuristic on independent tasks: the
// load-balancing step spreads them so all processors finish together.
func ExampleILHA() {
	g := oneport.NewGraph(6)
	for i := 0; i < 6; i++ {
		g.AddNode(2, "")
	}
	pl, err := oneport.UniformPlatform([]float64{1, 2}, 1)
	if err != nil {
		panic(err)
	}
	s, err := oneport.ILHA(g, pl, oneport.OnePort, oneport.ILHAOptions{B: 6})
	if err != nil {
		panic(err)
	}
	// the cycle-1 processor takes 4 tasks (8 time units), the cycle-2
	// processor 2 tasks (8 time units): a perfect split
	fmt.Printf("makespan %g\n", s.Makespan())
	// Output: makespan 8
}

// ExampleValidate demonstrates that the validator catches one-port
// violations that the macro-dataflow model permits.
func ExampleValidate() {
	g := oneport.NewGraph(5)
	src := g.AddNode(1, "src")
	for i := 0; i < 4; i++ {
		child := g.AddNode(1, "")
		g.MustEdge(src, child, 1)
	}
	pl, err := oneport.UniformPlatform([]float64{1, 1, 1}, 1)
	if err != nil {
		panic(err)
	}
	// schedule under the permissive model, then check it against the strict
	// one: the overlapping sends break the one-port rule
	s, err := oneport.HEFT(g, pl, oneport.MacroDataflow)
	if err != nil {
		panic(err)
	}
	fmt.Println("macro valid:", oneport.Validate(g, pl, s, oneport.MacroDataflow) == nil)
	fmt.Println("one-port valid:", oneport.Validate(g, pl, s, oneport.OnePort) == nil)
	// Output:
	// macro valid: true
	// one-port valid: false
}
